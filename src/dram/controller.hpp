#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "dram/address_map.hpp"
#include "dram/bank.hpp"
#include "dram/command_log.hpp"
#include "dram/config.hpp"
#include "dram/refresh.hpp"
#include "dram/reliability_hooks.hpp"
#include "dram/request.hpp"
#include "dram/scheduler.hpp"
#include "dram/telemetry_hooks.hpp"

namespace edsim::dram {

/// Aggregate statistics snapshot for one channel.
struct ControllerStats {
  std::uint64_t cycles = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;       ///< request served from an open row
  std::uint64_t row_misses = 0;     ///< bank was idle, ACT needed
  std::uint64_t row_conflicts = 0;  ///< another row open, PRE+ACT needed
  std::uint64_t activations = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t data_bus_busy_cycles = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t powerdown_cycles = 0;  ///< cycles spent in power-down
  std::uint64_t redirected_requests = 0;  ///< steered around retired banks
  std::uint64_t watchdog_retries = 0;     ///< starvation escalations fired
  std::uint64_t maintenance_ops = 0;      ///< self-managed slots claimed
  ReliabilityCounters reliability;        ///< mirrored from attached hooks
  Accumulator read_latency;   ///< cycles, arrival -> last beat
  Accumulator write_latency;
  Accumulator queue_occupancy;

  double row_hit_rate() const {
    const auto total = row_hits + row_misses + row_conflicts;
    return total ? static_cast<double>(row_hits) / static_cast<double>(total)
                 : 0.0;
  }
  double data_bus_utilization() const {
    return cycles ? static_cast<double>(data_bus_busy_cycles) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  double powerdown_fraction() const {
    return cycles ? static_cast<double>(powerdown_cycles) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  /// Sustained bandwidth over the measured window.
  Bandwidth sustained_bandwidth(Frequency clock) const {
    if (cycles == 0) return Bandwidth{};
    const double seconds = static_cast<double>(cycles) / clock.hz();
    return Bandwidth{static_cast<double>(bytes_transferred) * 8.0 / seconds};
  }
};

/// Cycle-accurate single-channel DRAM controller + device model.
///
/// Drive it with `enqueue` and `tick`; collect finished requests with
/// `drain_completed`. One command per cycle on the command bus; the data
/// bus is tracked separately with read/write turnaround penalties.
class Controller {
 public:
  explicit Controller(const DramConfig& cfg);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Try to accept a request; returns false when the queue is full (the
  /// client must retry — this back-pressure is what the FIFO-depth
  /// analysis in clients/ measures).
  bool enqueue(Request req);

  bool queue_full() const { return queue_.size() >= cfg_.queue_depth; }
  std::size_t queue_size() const { return queue_.size(); }

  /// Advance one DRAM clock.
  void tick();

  /// Event-driven fast-forward: advance to `target_cycle` with results
  /// bit-identical to calling tick() in a loop. The controller always
  /// executes one real tick (settling scheduler hysteresis and power-down
  /// transitions), then bulk-credits the stretch up to the next event via
  /// advance_idle(). No requests may be enqueued while this runs — the
  /// caller leaps over dead time between its own arrivals.
  void tick_until(std::uint64_t target_cycle);

  /// Dense-traffic companion to tick_until: advance bit-identically, but
  /// return as soon as a front-end-visible event has executed — a queue
  /// slot freed (column issue or invalidation) or a request retired into
  /// the completed list — stopping at the cycle right after it, never
  /// past `bound`. The caller bulk-credits the covered stretch knowing no
  /// grant opportunity or pending delivery hides inside it.
  void dense_advance(std::uint64_t bound);

  /// Earliest cycle >= cycle() at which tick() might do more than
  /// bookkeeping: min over in-flight completions, bank-timing releases of
  /// queued requests, refresh urgency, pending auto-precharges, page-
  /// timeout closes, watchdog deadlines, and power-down entry/exit.
  /// Returns kNeverCycle when nothing is pending at all. Conservative:
  /// may return a cycle whose tick turns out to be quiet (never the
  /// reverse), so callers skip at most to the returned cycle.
  std::uint64_t next_event_cycle() const;

  /// Credit `count` quiet cycles in bulk — exactly what `count` bookkeeping
  /// ticks would have recorded (queue-occupancy samples, power-down cycles,
  /// reliability hook clocks). Only legal when next_event_cycle() >
  /// cycle() + count - 1; tick_until and the client systems guarantee that.
  void advance_idle(std::uint64_t count);

  /// Requests whose last data beat completed since the previous drain.
  /// Order is completion order.
  std::vector<Request> drain_completed();

  /// Allocation-free variant: clears `out` and moves the completed
  /// requests into it, reusing its capacity across calls.
  void drain_completed_into(std::vector<Request>& out);

  /// True when completed requests are waiting to be drained.
  bool has_completions() const { return !completed_.empty(); }

  /// True when no request is queued or in flight.
  bool idle() const { return queue_.empty() && inflight_.empty(); }

  /// Run until idle or until `max_cycles` more cycles elapse.
  void drain(std::uint64_t max_cycles = 1'000'000);

  std::uint64_t cycle() const { return cycle_; }
  const DramConfig& config() const { return cfg_; }
  const AddressMapper& mapper() const { return mapper_; }
  const ControllerStats& stats() const { return stats_; }
  void reset_stats();

  /// Retention feedback hook (see RefreshEngine::scale_interval).
  RefreshEngine& refresh_engine() { return refresh_; }

  /// Capture every bus command into `log` (nullptr detaches). The trace
  /// can be replayed through ProtocolChecker for independent timing
  /// verification.
  void attach_command_log(CommandLog* log) { command_log_ = log; }

  /// Attach the runtime reliability layer (nullptr detaches). The hooks
  /// see every tick, column access, and refresh; the controller mirrors
  /// their counters into `stats().reliability` and steers enqueues away
  /// from banks the hooks report as retired.
  void attach_reliability(ReliabilityHooks* hooks);
  ReliabilityHooks* reliability_hooks() const { return hooks_; }

  /// True when graceful degradation has retired every bank — the channel
  /// can no longer accept traffic (multi_channel fails over on this).
  bool all_banks_retired() const;

  /// Attach observability probes (nullptr detaches). The hooks see the
  /// request lifecycle (enqueue -> issue -> data -> complete), every bus
  /// command, and every cycle advance (per-tick and bulk); they are pure
  /// observers and never change simulation behaviour. Detached cost is
  /// one null check per probe site.
  void attach_telemetry(TelemetryHooks* hooks) { telemetry_ = hooks; }
  TelemetryHooks* telemetry_hooks() const { return telemetry_; }

  /// Currently attached command log (nullptr when detached).
  CommandLog* command_log() const { return command_log_; }

  /// Toggle incremental scheduling state (on by default). When on, the
  /// candidate list and the per-class release minima are maintained
  /// across rounds — inserted on enqueue, refreshed on the bank events
  /// that can change them, removed on issue — instead of being recomputed
  /// from scratch every round. Both modes are bit-identical; the rescan
  /// path is kept as the reference for the differential tests and as the
  /// "before" side of the microbenchmark pairs.
  void set_incremental_scheduling(bool on);
  bool incremental_scheduling() const { return incremental_; }

  /// Toggle the dense-traffic burst-issue fast path (on by default). When
  /// the whole queue is a single-bank row-hit streak in a provably
  /// deterministic steady state (no refresh / maintenance / watchdog /
  /// power-down deadline, no pending auto-precharge, no attached
  /// reliability hooks), tick_until() computes the next command issues in
  /// closed form instead of running the full scheduler round every event.
  /// Both settings are bit-identical across stats, command log, and
  /// telemetry; the off position is the differential-fuzz reference.
  void set_burst_issue(bool on) { burst_issue_ = on; }
  bool burst_issue() const { return burst_issue_; }

  /// Serialize / restore the full dynamic channel state: banks, refresh
  /// pacing, scheduler hysteresis, queued and in-flight requests, bus and
  /// channel constraints, power-down and maintenance-lock state, stats.
  /// Attached observers (command log, telemetry, reliability hooks) are
  /// NOT serialized — the caller reconstructs a controller with the same
  /// DramConfig, re-attaches its observers (attach_reliability BEFORE
  /// load, so the attach-derived flags are in place and load then restores
  /// the counters attach reset), and calls load(). The incremental
  /// scheduling caches are rebuilt on load, not stored.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  struct QueueEntry {
    Request req;
    Coordinates coord;
    bool classified = false;  ///< row hit/miss/conflict already counted
    unsigned wd_retries = 0;         ///< watchdog escalations so far
    std::uint64_t wd_deadline = 0;   ///< next watchdog check cycle
    // Incrementally maintained scheduling cache — valid whenever the
    // entry's bank state is unchanged since the last refresh_entry().
    // kRefresh doubles as the "never refreshed" sentinel (no candidate
    // ever needs it).
    Command cached_cmd = Command::kRefresh;
    bool cached_row_hit = false;
    /// Earliest cycle the bank-local constraints allow cached_cmd;
    /// kNeverCycle while a pending auto-precharge gates the bank.
    std::uint64_t bank_release = kNeverCycle;
  };

  struct InFlight {
    Request req;
  };

  /// Release-minimum bookkeeping: one lazy min-heap per candidate class,
  /// keyed by the bank-local release cycle. Entries are pushed whenever a
  /// queue entry's cached release changes and invalidated lazily on pop
  /// (the id left the queue, changed class, or carries a newer release).
  enum ReleaseClass : unsigned {
    kClassAct = 0,
    kClassPre,
    kClassColRead,
    kClassColWrite,
    kClassCount,
    kClassNone = kClassCount,  ///< uncached sentinel
  };
  struct ReleaseEntry {
    std::uint64_t cycle = 0;
    std::uint64_t id = 0;
  };

  static unsigned class_of(Command cmd);

  void classify(QueueEntry& e, const Bank& bank);
  void log_command(const CommandRecord& rec);
  void notify_tick();
  TickSample tick_sample() const;
  bool channel_act_legal(std::uint64_t cycle) const;
  bool column_legal(AccessType type, std::uint64_t cycle) const;
  /// Earliest cycle the channel-level constraints (tRRD/tFAW) allow an
  /// ACT; the per-bank window is tracked separately.
  std::uint64_t channel_act_release() const;
  /// Earliest cycle the shared data-bus constraints (occupancy plus
  /// turnaround) allow a column command of `type`.
  std::uint64_t channel_column_release(AccessType type) const;
  void issue_column(QueueEntry& e, std::uint64_t cycle);
  bool tick_refresh();
  /// Self-managed replacement for tick_refresh: offer idle precharged
  /// banks to the reliability hooks (SMD-style arbitration). Returns true
  /// when the command slot was consumed (urgent drain PRE).
  bool tick_maintenance();
  /// Release expired maintenance locks (runs at the top of tick so lazy
  /// expiries can never wedge the event bound).
  void expire_maintenance_locks();
  /// Maintenance term of the next-event bound (locks, urgent drains,
  /// idle-slot claims, schedule changes). Shared by both next-event paths.
  std::uint64_t maintenance_event_bound() const;
  bool bank_has_queued(unsigned b) const;
  /// Any unlocked bank with past-deadline maintenance (power-down gate).
  bool maintenance_any_urgent() const;
  bool tick_autoprecharge();
  void tick_watchdog();
  /// Retire every in-flight request whose last data beat is done (step 1
  /// of tick(); shared with the burst-issue lite tick).
  void retire_due_inflight();
  const std::vector<Candidate>& build_candidates();
  const std::vector<Candidate>& build_candidates_rescan();
  std::uint64_t next_event_cycle_rescan() const;
  /// Devirtualized scheduler dispatch: every policy class is final, so a
  /// switch on the configured kind lets the compiler inline the pick into
  /// the issue path (no vtable load per round).
  std::size_t dispatch_pick(const std::vector<Candidate>& candidates,
                            std::uint64_t oldest_wait) const;
  /// Scheduler-state side effect of one pick round (ReadFirst hysteresis);
  /// the burst path applies it without building a candidate list.
  void scheduler_note_pick() const;
  /// Dense-traffic fast path: when the queue is a homogeneous single-bank
  /// row-hit streak in a deterministic steady state, advance through issue
  /// and retire events in closed form up to (exclusive) the first cycle
  /// that needs the general tick() path, never beyond `target_cycle`.
  /// Returns the number of cycles advanced (0 = not eligible). Bit-
  /// identical to ticking through the same stretch. With
  /// `stop_after_event` the loop exits right after its first lite tick
  /// (every lite tick issues or retires — a front-end-visible event), so
  /// dense_advance can hand control back without re-deriving the bound.
  std::uint64_t issue_burst(std::uint64_t target_cycle,
                            bool stop_after_event = false);

  // --- incremental scheduling cache maintenance ---------------------------
  /// Recompute one entry's cached command / row-hit / bank release from
  /// the live bank state and push a fresh heap record when it moved.
  void refresh_entry(std::size_t pos);
  /// Bank `b`'s state or auto-precharge gate changed: refresh every
  /// queued entry targeting it.
  void invalidate_bank(unsigned b);
  void invalidate_all_banks();
  /// Rebuild heaps and every cached entry (mode toggle, reliability
  /// dirty-flag fallback).
  void rebuild_sched_cache();
  /// Remove queue_[pos] and re-index the per-bank position lists.
  void erase_queue_entry(std::size_t pos);
  void push_release(unsigned cls, std::uint64_t rel, std::uint64_t id) const;
  bool release_entry_live(unsigned cls, const ReleaseEntry& r) const;
  void compact_heap(unsigned cls) const;
  /// True when a queued request still wants bank `b`'s open row.
  bool open_row_wanted(unsigned b) const;
  void set_autopre(unsigned b);
  void clear_autopre(unsigned b);
  /// Reliability remap/retire fallback: refresh the whole cache when the
  /// hooks report graceful-degradation events since the last round.
  void maybe_reliability_refresh();

  DramConfig cfg_;
  AddressMapper mapper_;
  std::vector<Bank> banks_;
  std::vector<bool> autopre_pending_;
  std::vector<std::uint64_t> last_col_cycle_;  // kTimeout bookkeeping
  std::unique_ptr<Scheduler> scheduler_;
  RefreshEngine refresh_;

  std::vector<QueueEntry> queue_;  // age-ordered
  std::vector<InFlight> inflight_;
  std::vector<Request> completed_;
  std::vector<Candidate> candidates_;  // scratch, refreshed each round

  // Incremental scheduling state (see docs/performance.md).
  bool incremental_ = true;
  /// The burst-issue lite tick never consults the incremental caches, so
  /// instead of refreshing ~queue_depth entries per closed-form issue it
  /// sets this flag and skips all cache maintenance; the caches are
  /// rebuilt wholesale when the general path resumes (tick()), and the
  /// cache readers (next_event_cycle, open_row_wanted, bank_has_queued)
  /// fall back to their rescan forms while the flag is up. Derived
  /// state: never serialized, cleared by rebuild_sched_cache().
  bool sched_cache_stale_ = false;
  std::vector<std::vector<std::uint32_t>> bank_entries_;  // queue positions
  std::unordered_map<std::uint64_t, std::uint32_t> pos_of_id_;
  /// Lazy min-heaps (std::greater order via push/pop_heap); mutable so
  /// next_event_cycle() can drop stale tops — a pure cache operation.
  mutable std::array<std::vector<ReleaseEntry>, kClassCount> release_heaps_;
  std::uint64_t inflight_min_done_ = kNeverCycle;
  unsigned autopre_count_ = 0;
  std::uint64_t reliability_events_seen_ = 0;

  // Burst-issue fast path (see docs/performance.md, "Dense traffic").
  // SoA mirror of the queue for the branch-light streak probe: one packed
  // (bank, row, direction) key and one client id per entry, maintained on
  // enqueue / erase / load alongside queue_. The counters make the
  // remaining eligibility gates O(1).
  bool burst_issue_ = true;
  std::vector<std::uint64_t> streak_key_;   // (bank << 33) | (row << 1) | w
  std::vector<std::uint32_t> streak_client_;
  unsigned queued_writes_ = 0;  ///< write entries in queue_ (counter, so
                                ///< the hysteresis note needs no rescan)

  std::uint64_t cycle_ = 0;
  std::uint64_t next_id_ = 0;

  // Cross-bank / channel constraints.
  std::uint64_t last_act_cycle_ = 0;
  bool any_act_yet_ = false;
  std::deque<std::uint64_t> recent_acts_;  // for tFAW

  // Data bus occupancy.
  std::uint64_t bus_busy_until_ = 0;  // first free data cycle
  std::uint64_t last_data_end_ = 0;
  AccessType last_dir_ = AccessType::kRead;
  bool any_data_yet_ = false;

  // Refresh draining state.
  bool refresh_draining_ = false;

  // Self-managed maintenance lock regions (cycle the bank unlocks; 0 =
  // unlocked). Sampled from the hooks at attach_reliability.
  bool self_managed_ = false;
  std::vector<std::uint64_t> maint_until_;
  unsigned maint_locked_ = 0;  ///< live lock count (fast skip)

  // Power-down state (config.powerdown_enabled).
  bool powered_down_ = false;
  std::uint64_t idle_since_ = 0;   ///< cycle the current idle streak began
  std::uint64_t wake_until_ = 0;   ///< commands blocked until tXP elapses
  bool was_idle_ = false;

  CommandLog* command_log_ = nullptr;
  ReliabilityHooks* hooks_ = nullptr;
  TelemetryHooks* telemetry_ = nullptr;

  ControllerStats stats_;
};

}  // namespace edsim::dram
