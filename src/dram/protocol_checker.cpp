#include "dram/protocol_checker.hpp"

#include <cstdio>
#include <deque>
#include <optional>

#include "common/error.hpp"

namespace edsim::dram {

std::string Violation::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "cycle %llu: %s",
                static_cast<unsigned long long>(cycle), rule.c_str());
  return buf;
}

ProtocolChecker::ProtocolChecker(const DramConfig& cfg,
                                 ViolationPolicy policy)
    : cfg_(cfg), policy_(policy) {
  cfg_.validate();
}

namespace {

/// Per-bank replay state. Uses signed sentinels so "never happened"
/// needs no special cases.
struct BankState {
  bool active = false;
  std::optional<std::uint64_t> last_act;
  std::optional<std::uint64_t> last_pre;
  std::optional<std::uint64_t> last_col;
  std::optional<std::uint64_t> last_wr_data_end;  // for tWR
  std::optional<std::uint64_t> last_rd;           // for read-to-precharge
  std::optional<std::uint64_t> ref_end;           // tRFC window
  std::uint64_t lock_until = 0;                   // maintenance lock region
  bool maint_open = false;                        // MAINT without MAINT-END
};

bool too_soon(const std::optional<std::uint64_t>& past, std::uint64_t now,
              unsigned gap) {
  return past.has_value() && now < *past + gap;
}

}  // namespace

std::vector<Violation> ProtocolChecker::verify(const CommandLog& log) const {
  const TimingParams& t = cfg_.timing;
  const unsigned data_cycles =
      (t.burst_length + cfg_.transfers_per_clock - 1) /
      cfg_.transfers_per_clock;

  std::vector<Violation> out;
  std::vector<BankState> banks(cfg_.banks);
  std::optional<std::uint64_t> last_act_any;      // tRRD
  std::deque<std::uint64_t> act_window;           // tFAW
  std::optional<std::uint64_t> bus_busy_until;    // data bus occupancy
  std::optional<std::uint64_t> last_data_end;
  bool last_was_write = false;
  bool any_data = false;
  std::uint64_t prev_cycle = 0;
  bool first = true;
  std::optional<std::uint64_t> last_bus_cycle;

  auto flag = [&](std::uint64_t cycle, const std::string& rule) {
    if (policy_ == ViolationPolicy::kThrow) {
      throw Error(ErrorKind::kProtocolViolation, cycle, rule);
    }
    out.push_back(Violation{cycle, rule});
  };

  for (const CommandRecord& r : log.records()) {
    if (!first && r.cycle < prev_cycle) {
      flag(r.cycle, "command log not time-ordered");
    }
    first = false;
    prev_cycle = r.cycle;
    // Maintenance lock markers are not bus commands; only real commands
    // contend for the single command bus.
    const bool bus_cmd =
        r.cmd != Command::kMaintStart && r.cmd != Command::kMaintEnd;
    if (bus_cmd) {
      if (last_bus_cycle && r.cycle == *last_bus_cycle) {
        flag(r.cycle, "two commands in one cycle (single command bus)");
      }
      last_bus_cycle = r.cycle;
    }

    if (r.cmd != Command::kRefresh && r.bank >= cfg_.banks) {
      flag(r.cycle, "bank index out of range");
      continue;
    }

    // TDM slot ownership: every client-attributed command must fall inside
    // its client's time slot. Housekeeping commands (refresh drains,
    // power-down, page-timeout closes, maintenance) carry kNoClient and are
    // exempt — they only use slots the arbitration left idle.
    if (cfg_.scheduler == SchedulerKind::kTdm &&
        r.client != CommandRecord::kNoClient) {
      const unsigned owner = static_cast<unsigned>(
          (r.cycle / cfg_.tdm_slot_cycles) % cfg_.tdm_clients);
      if (r.client % cfg_.tdm_clients != owner) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "TDM slot violation (client %u issued in slot %u)",
                      r.client, owner);
        flag(r.cycle, buf);
      }
    }

    switch (r.cmd) {
      case Command::kActivate: {
        BankState& b = banks[r.bank];
        if (b.active) flag(r.cycle, "ACT to already-active bank");
        if (too_soon(b.last_act, r.cycle, t.tRC))
          flag(r.cycle, "tRC (ACT->ACT same bank)");
        if (too_soon(b.last_pre, r.cycle, t.tRP))
          flag(r.cycle, "tRP (PRE->ACT)");
        if (b.ref_end && r.cycle < *b.ref_end)
          flag(r.cycle, "tRFC (ACT during refresh)");
        if (too_soon(last_act_any, r.cycle, t.tRRD))
          flag(r.cycle, "tRRD (ACT->ACT any bank)");
        if (t.tFAW != 0 && act_window.size() >= 4 &&
            r.cycle < act_window[act_window.size() - 4] + t.tFAW) {
          flag(r.cycle, "tFAW (5th ACT in window)");
        }
        if (r.row >= cfg_.rows_per_bank)
          flag(r.cycle, "row index out of range");
        if (r.cycle < b.lock_until)
          flag(r.cycle, "ACT to bank under maintenance (lock region)");
        b.active = true;
        b.last_act = r.cycle;
        last_act_any = r.cycle;
        act_window.push_back(r.cycle);
        if (act_window.size() > 8) act_window.pop_front();
        break;
      }
      case Command::kPrecharge: {
        BankState& b = banks[r.bank];
        if (!b.active) flag(r.cycle, "PRE to idle bank");
        if (too_soon(b.last_act, r.cycle, t.tRAS))
          flag(r.cycle, "tRAS (ACT->PRE)");
        if (b.last_rd && r.cycle < *b.last_rd + t.burst_length)
          flag(r.cycle, "read-to-precharge (burst not drained)");
        if (b.last_wr_data_end && r.cycle < *b.last_wr_data_end + t.tWR)
          flag(r.cycle, "tWR (write recovery)");
        if (r.cycle < b.lock_until)
          flag(r.cycle, "PRE to bank under maintenance (lock region)");
        b.active = false;
        b.last_pre = r.cycle;
        break;
      }
      case Command::kRead:
      case Command::kWrite: {
        BankState& b = banks[r.bank];
        const bool is_write = r.cmd == Command::kWrite;
        if (!b.active) flag(r.cycle, "column command to idle bank");
        if (r.cycle < b.lock_until)
          flag(r.cycle, "column command to bank under maintenance");
        if (too_soon(b.last_act, r.cycle, t.tRCD))
          flag(r.cycle, "tRCD (ACT->column)");
        if (too_soon(b.last_col, r.cycle, t.tCCD)) flag(r.cycle, "tCCD");
        const std::uint64_t data_start =
            r.cycle + (is_write ? t.tWL : t.tCL);
        const std::uint64_t data_end = data_start + data_cycles;
        if (bus_busy_until && data_start < *bus_busy_until)
          flag(r.cycle, "data-bus collision");
        if (any_data) {
          if (is_write && !last_was_write &&
              data_start < *last_data_end + t.tRTW) {
            flag(r.cycle, "tRTW (read->write turnaround)");
          }
          if (!is_write && last_was_write &&
              r.cycle < *last_data_end + t.tWTR) {
            flag(r.cycle, "tWTR (write->read turnaround)");
          }
        }
        b.last_col = r.cycle;
        if (is_write) {
          b.last_wr_data_end = data_end;
        } else {
          b.last_rd = r.cycle;
        }
        if (r.auto_precharge) {
          // Auto-precharge is modelled as taking effect when legal; the
          // later explicit state is checked via the next ACT's tRP, so
          // nothing further to verify here.
          b.active = false;
          const std::uint64_t implicit_pre =
              std::max(r.cycle + (is_write ? t.tWL + t.burst_length + t.tWR
                                           : t.burst_length),
                       b.last_act ? *b.last_act + t.tRAS : 0);
          b.last_pre = implicit_pre;
        }
        bus_busy_until = data_end;
        last_data_end = data_end;
        last_was_write = is_write;
        any_data = true;
        break;
      }
      case Command::kRefresh: {
        for (unsigned bi = 0; bi < cfg_.banks; ++bi) {
          BankState& b = banks[bi];
          if (b.active) flag(r.cycle, "REF with open bank");
          if (too_soon(b.last_pre, r.cycle, t.tRP))
            flag(r.cycle, "tRP before REF");
          b.ref_end = r.cycle + t.tRFC;
          b.last_act.reset();  // refresh resets the row timing chain
        }
        break;
      }
      case Command::kMaintStart: {
        // CommandRecord.row carries the lock duration.
        BankState& b = banks[r.bank];
        if (b.active) flag(r.cycle, "maintenance start on active bank");
        if (b.maint_open || r.cycle < b.lock_until)
          flag(r.cycle, "maintenance start on already-locked bank");
        if (too_soon(b.last_pre, r.cycle, t.tRP))
          flag(r.cycle, "tRP before maintenance start");
        if (b.ref_end && r.cycle < *b.ref_end)
          flag(r.cycle, "maintenance start during refresh (tRFC)");
        b.lock_until = r.cycle + r.row;
        b.maint_open = true;
        b.last_act.reset();  // internal ops reset the row timing chain
        break;
      }
      case Command::kMaintEnd: {
        BankState& b = banks[r.bank];
        if (!b.maint_open)
          flag(r.cycle, "maintenance end without matching start");
        if (r.cycle < b.lock_until)
          flag(r.cycle, "maintenance end before its lock expires");
        b.maint_open = false;
        break;
      }
    }
  }
  return out;
}

}  // namespace edsim::dram
