#pragma once

#include <cstdint>

namespace edsim::dram {

/// "No upcoming event" sentinel for next-event queries (next_event_cycle,
/// Client::next_request_cycle, RefreshEngine::next_urgent_cycle).
inline constexpr std::uint64_t kNeverCycle =
    static_cast<std::uint64_t>(-1);

enum class AccessType : std::uint8_t { kRead, kWrite };

/// One burst-granular memory access. Larger client transfers are split
/// into requests by the front end (clients/ library).
struct Request {
  std::uint64_t id = 0;          ///< assigned by the controller at enqueue
  unsigned client_id = 0;        ///< which memory client issued it
  AccessType type = AccessType::kRead;
  std::uint64_t addr = 0;        ///< byte address (burst-aligned by mapper)
  std::uint64_t arrival_cycle = 0;
  std::uint64_t done_cycle = 0;  ///< set when the last data beat completes
  std::uint64_t tag = 0;         ///< opaque client cookie (e.g. stream pos)
  bool ecc_corrected = false;    ///< SEC repaired this access's data
  bool data_error = false;       ///< uncorrectable error — payload is garbage

  std::uint64_t latency() const { return done_cycle - arrival_cycle; }
};

/// DRAM command set. kMaintStart/kMaintEnd are not bus commands: they
/// bracket a self-managed maintenance lock region on one bank (the device
/// refreshes rows internally; the controller must not command the bank
/// until the region ends). They appear in the command log so the protocol
/// checker can assert the lock discipline.
enum class Command : std::uint8_t {
  kActivate,
  kPrecharge,
  kRead,
  kWrite,
  kRefresh,
  kMaintStart,
  kMaintEnd,
};

const char* to_string(Command c);
const char* to_string(AccessType t);

}  // namespace edsim::dram
