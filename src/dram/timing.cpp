#include "dram/timing.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace edsim::dram {

void TimingParams::validate() const {
  require(tRCD >= 1, "timing: tRCD must be >= 1");
  require(tRP >= 1, "timing: tRP must be >= 1");
  require(tCL >= 1, "timing: tCL must be >= 1");
  require(tRAS >= tRCD, "timing: tRAS must cover tRCD");
  require(tRC >= tRAS + tRP, "timing: tRC must be >= tRAS + tRP");
  require(tRRD >= 1, "timing: tRRD must be >= 1");
  require(tCCD >= 1, "timing: tCCD must be >= 1");
  require(burst_length >= 1, "timing: burst_length must be >= 1");
  require(tRFC >= tRP, "timing: tRFC must be >= tRP");
  require(tREFI > tRFC, "timing: tREFI must exceed tRFC");
  if (tFAW != 0)
    require(tFAW >= tRRD * 3, "timing: tFAW inconsistent with tRRD");
}

std::string TimingParams::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "tRCD=%u tRP=%u CL=%u tRAS=%u tRC=%u tRRD=%u BL=%u tRFC=%u "
                "tREFI=%u",
                tRCD, tRP, tCL, tRAS, tRC, tRRD, burst_length, tRFC, tREFI);
  return buf;
}

TimingParams timing_pc100_sdram() {
  // 100 MHz, 10 ns cycle. -8E-grade PC100 part: tRCD 20 ns, tRP 20 ns,
  // CL 2, tRAS 50 ns, tRC 70 ns. Refresh: 4096 rows / 64 ms.
  TimingParams t;
  t.tRCD = 2;
  t.tRP = 2;
  t.tCL = 2;
  t.tWL = 0;  // SDR SDRAM writes present data with the command
  t.tRAS = 5;
  t.tRC = 7;
  t.tRRD = 2;
  t.tFAW = 0;
  t.tCCD = 1;
  t.tWR = 2;
  t.tWTR = 1;
  t.tRTW = 2;
  t.tRFC = 8;
  t.tREFI = 1562;  // 15.6 us at 100 MHz
  t.burst_length = 4;
  t.validate();
  return t;
}

TimingParams timing_edram_7ns() {
  // Paper §5: cycle times better than 7 ns (>=143 MHz). The DRAM core is
  // the same storage technology, so the analog latencies stay ~constant in
  // nanoseconds and take more (shorter) cycles: tRCD ~21 ns -> 3 cycles etc.
  TimingParams t;
  t.tRCD = 3;
  t.tRP = 3;
  t.tCL = 3;
  t.tWL = 1;
  t.tRAS = 7;
  t.tRC = 10;
  t.tRRD = 2;
  t.tFAW = 0;
  t.tCCD = 1;
  t.tWR = 3;
  t.tWTR = 2;
  t.tRTW = 2;
  t.tRFC = 12;
  t.tREFI = 2230;  // 15.6 us at 143 MHz
  t.burst_length = 4;
  t.validate();
  return t;
}

}  // namespace edsim::dram
