#include "dram/scheduler.hpp"

#include "common/error.hpp"
#include "common/snapshot.hpp"

namespace edsim::dram {

std::unique_ptr<Scheduler> Scheduler::make(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kFcfsPerBank:
      return std::make_unique<FcfsPerBankScheduler>();
    case SchedulerKind::kFrFcfs:
      return std::make_unique<FrFcfsScheduler>();
    case SchedulerKind::kReadFirst:
      return std::make_unique<ReadFirstScheduler>();
    case SchedulerKind::kTdm:
      return std::make_unique<TdmScheduler>(64, 4);
  }
  return std::make_unique<FrFcfsScheduler>();
}

std::unique_ptr<Scheduler> Scheduler::make(const DramConfig& cfg) {
  if (cfg.scheduler == SchedulerKind::kTdm) {
    return std::make_unique<TdmScheduler>(cfg.tdm_slot_cycles,
                                          cfg.tdm_clients);
  }
  return make(cfg.scheduler);
}

std::size_t FcfsScheduler::pick(const std::vector<Candidate>& candidates,
                                std::uint64_t /*cycle*/,
                                std::uint64_t /*oldest_wait*/) const {
  // Only the head of the queue may issue; everything else waits behind it.
  if (!candidates.empty() && candidates.front().queue_index == 0 &&
      candidates.front().issuable) {
    return 0;
  }
  return kNone;
}

std::size_t FcfsPerBankScheduler::pick(
    const std::vector<Candidate>& candidates,
    std::uint64_t /*cycle*/,
    std::uint64_t /*oldest_wait*/) const {
  // The oldest candidate per bank may issue; pick the oldest issuable one.
  std::uint64_t seen_banks = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    const std::uint64_t bit = 1ull << (c.bank & 63u);
    const bool head_of_bank = (seen_banks & bit) == 0;
    seen_banks |= bit;
    if (head_of_bank && c.issuable) return i;
  }
  return kNone;
}

std::size_t FrFcfsScheduler::pick(const std::vector<Candidate>& candidates,
                                  std::uint64_t /*cycle*/,
                                  std::uint64_t oldest_wait) const {
  if (oldest_wait > starvation_cap_) {
    // Starvation guard: serve strictly oldest-first until the queue drains
    // below the cap. Candidates are age-ordered, so take the first
    // issuable one belonging to the oldest request's bank chain — in
    // practice the first issuable candidate.
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (candidates[i].issuable) return i;
    return kNone;
  }
  // First ready: issuable row-hit column command, oldest first.
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (candidates[i].issuable && candidates[i].row_hit) return i;
  // Then: any issuable command, oldest first.
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (candidates[i].issuable) return i;
  return kNone;
}

ReadFirstScheduler::ReadFirstScheduler(unsigned high_watermark,
                                       unsigned low_watermark,
                                       std::uint64_t starvation_cap)
    : high_watermark_(high_watermark),
      low_watermark_(low_watermark),
      starvation_cap_(starvation_cap) {
  require(low_watermark_ < high_watermark_,
          "read-first scheduler: watermarks must satisfy low < high");
}

std::size_t ReadFirstScheduler::pick(const std::vector<Candidate>& candidates,
                                     std::uint64_t /*cycle*/,
                                     std::uint64_t oldest_wait) const {
  unsigned writes = 0;
  for (const Candidate& c : candidates)
    if (c.is_write) ++writes;
  note_writes(writes);

  if (oldest_wait > starvation_cap_) {
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (candidates[i].issuable) return i;
    return kNone;
  }

  const bool favour_writes = draining_;
  // Four priority classes: (favoured, row hit) > (favoured) >
  // (other, row hit) > (other). Oldest-first within a class.
  for (const int pass : {0, 1, 2, 3}) {
    const bool want_write = (pass < 2) == favour_writes;
    const bool want_hit = pass % 2 == 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      if (!c.issuable) continue;
      if (c.is_write != want_write) continue;
      if (want_hit && !c.row_hit) continue;
      return i;
    }
  }
  return kNone;
}

void ReadFirstScheduler::save(SnapshotWriter& w) const {
  w.boolean(draining_);
}

void ReadFirstScheduler::load(SnapshotReader& r) { draining_ = r.boolean(); }

TdmScheduler::TdmScheduler(unsigned slot_cycles, unsigned num_slots)
    : slot_cycles_(slot_cycles), num_slots_(num_slots) {
  require(slot_cycles_ >= 1, "tdm scheduler: slot_cycles must be >= 1");
  require(num_slots_ >= 1, "tdm scheduler: num_slots must be >= 1");
}

std::size_t TdmScheduler::pick(const std::vector<Candidate>& candidates,
                               std::uint64_t cycle,
                               std::uint64_t /*oldest_wait*/) const {
  // Hard slot isolation: only the slot owner's requests may issue, no
  // matter how long anyone else has waited — the rotation itself is the
  // starvation guard. Within the slot, FR-FCFS order.
  const unsigned own = owner(cycle);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    if (c.issuable && c.row_hit && c.client_id % num_slots_ == own) return i;
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    if (c.issuable && c.client_id % num_slots_ == own) return i;
  }
  return kNone;
}

}  // namespace edsim::dram
