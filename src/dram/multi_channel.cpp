#include "dram/multi_channel.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/snapshot.hpp"

namespace edsim::dram {

MultiChannel::MultiChannel(const DramConfig& per_channel, unsigned channels,
                           ChannelInterleave interleave)
    : cfg_(per_channel), interleave_(interleave) {
  cfg_.validate();
  require(channels >= 1 && channels <= 16,
          "multi-channel: channel count out of range");
  ctls_.reserve(channels);
  for (unsigned i = 0; i < channels; ++i)
    ctls_.push_back(std::make_unique<Controller>(cfg_));
  channel_bytes_ = cfg_.capacity().byte_count();
  switch (interleave_) {
    case ChannelInterleave::kBurst:
      stripe_bytes_ = cfg_.bytes_per_access();
      break;
    case ChannelInterleave::kPage:
      stripe_bytes_ = cfg_.page_bytes;
      break;
    case ChannelInterleave::kRegion:
      stripe_bytes_ = channel_bytes_;
      break;
  }
}

Capacity MultiChannel::capacity() const {
  return cfg_.capacity() * channels();
}

Bandwidth MultiChannel::peak_bandwidth() const {
  return Bandwidth{cfg_.peak_bandwidth().bits_per_s * channels()};
}

unsigned MultiChannel::route(std::uint64_t addr) const {
  const std::uint64_t total = channel_bytes_ * channels();
  const std::uint64_t a = addr % total;
  return static_cast<unsigned>((a / stripe_bytes_) % channels());
}

unsigned MultiChannel::effective_channel(std::uint64_t addr) const {
  const unsigned home = route(addr);
  if (!ctls_[home]->all_banks_retired()) return home;
  for (unsigned off = 1; off < channels(); ++off) {
    const unsigned c = (home + off) % channels();
    if (!ctls_[c]->all_banks_retired()) return c;
  }
  return home;  // every channel dead: let the home controller reject it
}

bool MultiChannel::enqueue(Request req) {
  const unsigned ch = effective_channel(req.addr);
  if (ch != route(req.addr)) ++failed_over_;
  Controller& ctl = *ctls_[ch];
  // Strip the channel bits so each controller sees a dense local space:
  // global stripe index / channels -> local stripe index.
  const std::uint64_t total = channel_bytes_ * channels();
  const std::uint64_t a = req.addr % total;
  const std::uint64_t stripe = a / stripe_bytes_;
  const std::uint64_t local_stripe = stripe / channels();
  req.addr = local_stripe * stripe_bytes_ + a % stripe_bytes_;
  return ctl.enqueue(req);
}

bool MultiChannel::queue_full_for(std::uint64_t addr) const {
  return ctls_[effective_channel(addr)]->queue_full();
}

void MultiChannel::tick() {
  for (auto& c : ctls_) c->tick();
}

bool MultiChannel::parallel_tick_safe() const {
  // Distinct observer objects have distinct addresses, so a duplicate
  // pointer within a category means two channels share a sink.
  std::vector<const void*> tel, rel, log;
  const auto shared = [](std::vector<const void*>& seen, const void* p) {
    if (p == nullptr) return false;
    if (std::find(seen.begin(), seen.end(), p) != seen.end()) return true;
    seen.push_back(p);
    return false;
  };
  for (const auto& c : ctls_) {
    if (shared(tel, c->telemetry_hooks()) ||
        shared(rel, c->reliability_hooks()) || shared(log, c->command_log())) {
      return false;
    }
  }
  return true;
}

void MultiChannel::tick_until(std::uint64_t target_cycle) {
  // Channels never interact below the enqueue boundary, so ticking them
  // in lockstep and fast-forwarding them one after another reach the same
  // state; each channel leaps over its own dead time independently. The
  // fan-out keeps that guarantee: worker i touches only channel i (the
  // pool's placement-determinism contract), and per-channel observers fire
  // in their channel's own cycle order exactly as in the serial walk.
  const unsigned threads =
      tick_threads_ == 0 ? default_threads() : tick_threads_;
  if (threads > 1 && channels() >= kParallelChannelThreshold &&
      parallel_tick_safe()) {
    parallel_for(
        channels(),
        [&](std::size_t i) { ctls_[i]->tick_until(target_cycle); }, threads);
    return;
  }
  for (auto& c : ctls_) c->tick_until(target_cycle);
}

std::uint64_t MultiChannel::next_event_cycle() const {
  std::uint64_t ne = kNeverCycle;
  for (const auto& c : ctls_) ne = std::min(ne, c->next_event_cycle());
  return ne;
}

void MultiChannel::advance_idle(std::uint64_t count) {
  for (auto& c : ctls_) c->advance_idle(count);
}

bool MultiChannel::has_completions() const {
  for (const auto& c : ctls_) {
    if (c->has_completions()) return true;
  }
  return false;
}

bool MultiChannel::idle() const {
  for (const auto& c : ctls_) {
    if (!c->idle()) return false;
  }
  return true;
}

std::vector<Request> MultiChannel::drain_completed() {
  std::vector<Request> out;
  drain_completed_into(out);
  return out;
}

void MultiChannel::drain_completed_into(std::vector<Request>& out) {
  out.clear();
  for (auto& c : ctls_) {
    c->drain_completed_into(scratch_);
    out.insert(out.end(), scratch_.begin(), scratch_.end());
  }
}

ControllerStats MultiChannel::combined_stats() const {
  ControllerStats sum;
  for (const auto& c : ctls_) {
    const ControllerStats& s = c->stats();
    sum.cycles = std::max(sum.cycles, s.cycles);
    sum.reads += s.reads;
    sum.writes += s.writes;
    sum.row_hits += s.row_hits;
    sum.row_misses += s.row_misses;
    sum.row_conflicts += s.row_conflicts;
    sum.activations += s.activations;
    sum.precharges += s.precharges;
    sum.refreshes += s.refreshes;
    sum.data_bus_busy_cycles += s.data_bus_busy_cycles;
    sum.bytes_transferred += s.bytes_transferred;
    sum.read_latency.merge(s.read_latency);
    sum.write_latency.merge(s.write_latency);
    sum.queue_occupancy.merge(s.queue_occupancy);
  }
  return sum;
}

void MultiChannel::save(SnapshotWriter& w) const {
  w.u32(channels());
  w.u64(failed_over_);
  for (const auto& c : ctls_) c->save(w);
}

void MultiChannel::load(SnapshotReader& r) {
  if (r.u32() != channels()) {
    r.fail("multi-channel snapshot channel count mismatch");
  }
  failed_over_ = r.u64();
  for (auto& c : ctls_) c->load(r);
}

Bandwidth MultiChannel::sustained_bandwidth() const {
  const ControllerStats s = combined_stats();
  if (s.cycles == 0) return Bandwidth{};
  const double seconds = static_cast<double>(s.cycles) / cfg_.clock.hz();
  return Bandwidth{static_cast<double>(s.bytes_transferred) * 8.0 / seconds};
}

}  // namespace edsim::dram
