#pragma once

#include "common/units.hpp"
#include "dram/config.hpp"

namespace edsim::dram::presets {

/// A discrete PC100-class SDRAM device: 64 Mbit, 16-bit interface,
/// 100 MHz, 4 banks, 1 KB pages. This is the commodity building block the
/// paper's examples compare against (§1: "16-bit interface at 100 MHz").
DramConfig sdram_pc100_64mbit();

/// Same device generation, 4 Mbit (256K x 16) — the part used in the §1
/// fill-frequency example.
DramConfig sdram_pc100_4mbit();

/// An embedded DRAM channel in the Siemens 0.24 um concept (§5):
/// capacity in (binary) Mbit, interface width 16..512 bits, configurable
/// bank count and page length, 143 MHz (7 ns) clock.
DramConfig edram_module(unsigned capacity_mbit, unsigned interface_bits,
                        unsigned banks, unsigned page_bytes);

/// Convenience: the 4 Gbyte/s-class module from the §1 power example —
/// 256-bit interface at 143 MHz.
DramConfig edram_256bit_16mbit();

}  // namespace edsim::dram::presets
