#pragma once

#include <cstdint>

#include "dram/config.hpp"

namespace edsim::dram {

/// Decoded physical location of an access.
struct Coordinates {
  unsigned bank = 0;
  unsigned row = 0;
  unsigned column = 0;  ///< in beats (interface-width units)
  bool operator==(const Coordinates&) const = default;
};

/// Splits flat byte addresses into (bank, row, column) per the configured
/// scheme. Data mapping is one of the three system-level optimization
/// problems the paper names in §3 ("optimizing the mapping of the data into
/// memory such that the sustainable bandwidth approaches the peak").
class AddressMapper {
 public:
  explicit AddressMapper(const DramConfig& cfg);

  Coordinates decode(std::uint64_t byte_addr) const;
  /// Inverse of decode; used by tests to prove the mapping is a bijection.
  std::uint64_t encode(const Coordinates& c) const;

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  AddressMapping scheme_;
  unsigned banks_;
  unsigned rows_;
  unsigned cols_;          // columns per row, in beats
  unsigned beat_bytes_;
  unsigned burst_beats_;   // beats per access (for kRowColBank interleave)
  std::uint64_t capacity_bytes_;
};

}  // namespace edsim::dram
