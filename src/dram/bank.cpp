#include "dram/bank.hpp"

#include <algorithm>

#include "common/snapshot.hpp"

namespace edsim::dram {

const char* to_string(Command c) {
  switch (c) {
    case Command::kActivate: return "ACT";
    case Command::kPrecharge: return "PRE";
    case Command::kRead: return "RD";
    case Command::kWrite: return "WR";
    case Command::kRefresh: return "REF";
    case Command::kMaintStart: return "MAINT";
    case Command::kMaintEnd: return "MAINT-END";
  }
  return "?";
}

const char* to_string(AccessType t) {
  return t == AccessType::kRead ? "R" : "W";
}

bool Bank::can_issue(Command cmd, std::uint64_t cycle) const {
  switch (cmd) {
    case Command::kActivate:
      return state_ == State::kIdle && cycle >= next_act_;
    case Command::kPrecharge:
      return state_ == State::kActive && cycle >= next_pre_;
    case Command::kRead:
    case Command::kWrite:
      return state_ == State::kActive && cycle >= next_col_;
    case Command::kRefresh:
    case Command::kMaintStart:
      // Refresh is issued channel-wide; per-bank requirement is "idle and
      // past tRP", i.e. the same window as an ACT. A maintenance lock has
      // the identical entry condition on its one bank.
      return state_ == State::kIdle && cycle >= next_act_;
    case Command::kMaintEnd:
      return true;  // lock release, no timing of its own
  }
  return false;
}

std::uint64_t Bank::earliest(Command cmd) const {
  switch (cmd) {
    case Command::kActivate:
    case Command::kRefresh:
    case Command::kMaintStart:
      return next_act_;
    case Command::kPrecharge:
      return next_pre_;
    case Command::kRead:
    case Command::kWrite:
      return next_col_;
    case Command::kMaintEnd:
      break;
  }
  return 0;
}

void Bank::issue(Command cmd, unsigned row, std::uint64_t cycle) {
  switch (cmd) {
    case Command::kActivate:
      state_ = State::kActive;
      open_row_ = row;
      ++acts_;
      next_col_ = cycle + t_->tRCD;
      next_pre_ = cycle + t_->tRAS;
      next_act_ = cycle + t_->tRC;
      break;
    case Command::kPrecharge:
      state_ = State::kIdle;
      ++pres_;
      next_act_ = std::max(next_act_, cycle + t_->tRP);
      break;
    case Command::kRead:
      // Column commands push back the earliest precharge so the burst can
      // drain: PRE no earlier than RD + BL (read-to-precharge).
      next_col_ = cycle + t_->tCCD;
      next_pre_ = std::max<std::uint64_t>(next_pre_,
                                          cycle + t_->burst_length);
      break;
    case Command::kWrite:
      next_col_ = cycle + t_->tCCD;
      // Write recovery: PRE must wait until data written plus tWR.
      next_pre_ = std::max<std::uint64_t>(
          next_pre_, cycle + t_->tWL + t_->burst_length + t_->tWR);
      break;
    case Command::kRefresh:
      // Channel-level refresh holds every bank for tRFC.
      state_ = State::kIdle;
      next_act_ = cycle + t_->tRFC;
      break;
    case Command::kMaintStart:
    case Command::kMaintEnd:
      break;  // lock bookkeeping is block_until / controller state
  }
}

void Bank::save(SnapshotWriter& w) const {
  w.u64(static_cast<std::uint64_t>(state_));
  w.u64(open_row_);
  w.u64(next_act_);
  w.u64(next_pre_);
  w.u64(next_col_);
  w.u64(acts_);
  w.u64(pres_);
}

void Bank::load(SnapshotReader& r) {
  const std::uint64_t st = r.u64();
  if (st > static_cast<std::uint64_t>(State::kActive)) {
    r.fail("bank state out of range");
  }
  state_ = static_cast<State>(st);
  open_row_ = static_cast<unsigned>(r.u64());
  next_act_ = r.u64();
  next_pre_ = r.u64();
  next_col_ = r.u64();
  acts_ = r.u64();
  pres_ = r.u64();
}

}  // namespace edsim::dram
