#include "dram/trace_dump.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace edsim::dram {

namespace {
char glyph(Command c) {
  switch (c) {
    case Command::kActivate: return 'A';
    case Command::kPrecharge: return 'P';
    case Command::kRead: return 'R';
    case Command::kWrite: return 'W';
    case Command::kRefresh: return 'F';
    case Command::kMaintStart: return 'M';
    case Command::kMaintEnd: return 'm';
  }
  return '?';
}
}  // namespace

std::string render_waterfall(const CommandLog& log, unsigned banks,
                             std::uint64_t from_cycle,
                             std::uint64_t to_cycle, unsigned wrap) {
  require(banks >= 1, "waterfall: need at least one bank");
  require(to_cycle > from_cycle, "waterfall: empty window");
  require(wrap >= 1, "waterfall: wrap must be >= 1");
  const std::uint64_t span = to_cycle - from_cycle;
  require(span <= 100'000, "waterfall: window too large to render");

  // Paint the grid.
  std::vector<std::string> lanes(banks,
                                 std::string(static_cast<std::size_t>(span), '.'));
  for (const CommandRecord& r : log.records()) {
    if (r.cycle < from_cycle || r.cycle >= to_cycle) continue;
    const auto x = static_cast<std::size_t>(r.cycle - from_cycle);
    if (r.cmd == Command::kRefresh) {
      for (auto& lane : lanes) lane[x] = 'F';
    } else if (r.bank < banks) {
      lanes[r.bank][x] = glyph(r.cmd);
    }
  }

  // Emit in wrapped blocks.
  std::string out;
  for (std::uint64_t block = 0; block < span; block += wrap) {
    out += "cycle " + std::to_string(from_cycle + block) + "\n";
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(wrap, span - block));
    for (unsigned b = 0; b < banks; ++b) {
      out += "bank" + std::to_string(b) + " ";
      out += lanes[b].substr(static_cast<std::size_t>(block), len);
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

}  // namespace edsim::dram
