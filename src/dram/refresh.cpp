#include "dram/refresh.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace edsim::dram {

void RefreshEngine::scale_interval(double factor) {
  require(factor > 0.0, "refresh: interval scale factor must be positive");
  const double scaled = static_cast<double>(t_->tREFI) * factor;
  interval_ = std::max<std::uint64_t>(
      t_->tRFC + 1, static_cast<std::uint64_t>(std::llround(scaled)));
}

}  // namespace edsim::dram
