#include "dram/refresh.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/snapshot.hpp"

namespace edsim::dram {

void RefreshEngine::save(SnapshotWriter& w) const {
  w.u64(pending_);
  w.u64(next_due_);
  w.u64(interval_);
  w.u64(count_);
}

void RefreshEngine::load(SnapshotReader& r) {
  pending_ = static_cast<unsigned>(r.u64());
  next_due_ = r.u64();
  interval_ = r.u64();
  count_ = r.u64();
}

void RefreshEngine::scale_interval(double factor) {
  require(factor > 0.0, "refresh: interval scale factor must be positive");
  const double scaled = static_cast<double>(t_->tREFI) * factor;
  interval_ = std::max<std::uint64_t>(
      t_->tRFC + 1, static_cast<std::uint64_t>(std::llround(scaled)));
}

}  // namespace edsim::dram
