#include "dram/controller.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/snapshot.hpp"

namespace edsim::dram {

namespace {
/// a - b clamped at zero (timing releases saturate at cycle 0).
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}
}  // namespace

Controller::Controller(const DramConfig& cfg)
    : cfg_(cfg),
      mapper_(cfg),
      scheduler_(Scheduler::make(cfg)),
      refresh_(cfg_.timing, cfg.refresh_enabled, cfg.refresh_burst) {
  cfg_.validate();
  banks_.reserve(cfg_.banks);
  for (unsigned b = 0; b < cfg_.banks; ++b) banks_.emplace_back(cfg_.timing);
  autopre_pending_.assign(cfg_.banks, false);
  last_col_cycle_.assign(cfg_.banks, 0);
  bank_entries_.assign(cfg_.banks, {});
  maint_until_.assign(cfg_.banks, 0);
}

void Controller::log_command(const CommandRecord& rec) {
  if (command_log_ != nullptr) command_log_->record(rec);
  EDSIM_TELEMETRY(telemetry_, on_command(rec));
}

TickSample Controller::tick_sample() const {
  TickSample s;
  s.cycle = cycle_;
  s.queue_depth = static_cast<std::uint32_t>(queue_.size());
  std::uint32_t open = 0;
  for (const Bank& b : banks_) open += b.has_open_row() ? 1u : 0u;
  s.open_banks = open;
  return s;
}

void Controller::notify_tick() {
  if (telemetry_ != nullptr) telemetry_->on_cycle_advance(tick_sample(), stats_);
}

void Controller::attach_reliability(ReliabilityHooks* hooks) {
  hooks_ = hooks;
  reliability_events_seen_ = 0;
  if (hooks_ != nullptr) {
    const ReliabilityCounters c = hooks_->counters();
    reliability_events_seen_ = c.rows_remapped + c.banks_retired;
  }
  // Self-managed maintenance replaces the tREFI REF sweep. The flag is
  // sampled once here (toggle the hooks' switch before attaching).
  self_managed_ = hooks_ != nullptr && hooks_->self_managed();
  refresh_.set_self_managed(self_managed_);
}

bool Controller::all_banks_retired() const {
  if (hooks_ == nullptr) return false;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (!hooks_->bank_retired(b)) return false;
  }
  return true;
}

bool Controller::enqueue(Request req) {
  if (queue_full()) return false;
  req.id = next_id_++;
  req.arrival_cycle = cycle_;
  QueueEntry e;
  e.coord = mapper_.decode(req.addr);
  e.req = req;
  if (hooks_ != nullptr && hooks_->bank_retired(e.coord.bank)) {
    // Graceful degradation: steer around the dead bank. Capacity is lost
    // (aliasing into the fallback bank), but traffic keeps flowing.
    unsigned fallback = e.coord.bank;
    for (unsigned i = 1; i < cfg_.banks; ++i) {
      const unsigned b = (e.coord.bank + i) % cfg_.banks;
      if (!hooks_->bank_retired(b)) {
        fallback = b;
        break;
      }
    }
    if (fallback == e.coord.bank) return false;  // every bank is gone
    e.coord.bank = fallback;
    ++stats_.redirected_requests;
  }
  if (cfg_.watchdog_enabled) {
    e.wd_deadline = cycle_ + cfg_.watchdog_cycles;
  }
  queue_.push_back(e);
  // Pre-decoded SoA mirror for the burst-issue streak probe.
  streak_key_.push_back((static_cast<std::uint64_t>(e.coord.bank) << 33) |
                        (static_cast<std::uint64_t>(e.coord.row) << 1) |
                        (e.req.type == AccessType::kWrite ? 1u : 0u));
  streak_client_.push_back(e.req.client_id);
  if (e.req.type == AccessType::kWrite) ++queued_writes_;
  if (incremental_ && !sched_cache_stale_) {
    const auto pos = static_cast<std::uint32_t>(queue_.size() - 1);
    pos_of_id_[queue_.back().req.id] = pos;
    bank_entries_[queue_.back().coord.bank].push_back(pos);
    candidates_.push_back(Candidate{});
    refresh_entry(pos);
  }
  EDSIM_TELEMETRY(telemetry_, on_request_enqueued(queue_.back().req,
                                                  queue_.back().coord, cycle_));
  return true;
}

void Controller::reset_stats() {
  stats_ = ControllerStats{};
}

void Controller::classify(QueueEntry& e, const Bank& bank) {
  if (e.classified) return;
  e.classified = true;
  if (bank.has_open_row() && bank.open_row() == e.coord.row) {
    ++stats_.row_hits;
  } else if (!bank.has_open_row()) {
    ++stats_.row_misses;
  } else {
    ++stats_.row_conflicts;
  }
}

std::uint64_t Controller::channel_act_release() const {
  const auto& t = cfg_.timing;
  std::uint64_t rel = 0;
  if (any_act_yet_) rel = last_act_cycle_ + t.tRRD;
  if (t.tFAW != 0 && recent_acts_.size() >= 4) {
    rel = std::max(rel, recent_acts_[recent_acts_.size() - 4] + t.tFAW);
  }
  return rel;
}

std::uint64_t Controller::channel_column_release(AccessType type) const {
  const auto& t = cfg_.timing;
  if (type == AccessType::kRead) {
    std::uint64_t rel = sat_sub(bus_busy_until_, t.tCL);
    if (any_data_yet_ && last_dir_ == AccessType::kWrite) {
      rel = std::max(rel, last_data_end_ + t.tWTR);
    }
    return rel;
  }
  std::uint64_t rel = sat_sub(bus_busy_until_, t.tWL);
  if (any_data_yet_ && last_dir_ == AccessType::kRead) {
    rel = std::max(rel, sat_sub(last_data_end_ + t.tRTW, t.tWL));
  }
  return rel;
}

bool Controller::channel_act_legal(std::uint64_t cycle) const {
  return cycle >= channel_act_release();
}

bool Controller::column_legal(AccessType type, std::uint64_t cycle) const {
  return cycle >= channel_column_release(type);
}

// --- incremental scheduling cache -------------------------------------------

unsigned Controller::class_of(Command cmd) {
  switch (cmd) {
    case Command::kActivate:
      return kClassAct;
    case Command::kPrecharge:
      return kClassPre;
    case Command::kRead:
      return kClassColRead;
    case Command::kWrite:
      return kClassColWrite;
    case Command::kRefresh:
    case Command::kMaintStart:
    case Command::kMaintEnd:
      break;
  }
  return kClassNone;  // uncached sentinel
}

bool Controller::release_entry_live(unsigned cls, const ReleaseEntry& r) const {
  const auto it = pos_of_id_.find(r.id);
  if (it == pos_of_id_.end()) return false;  // issued or never registered
  const QueueEntry& e = queue_[it->second];
  return class_of(e.cached_cmd) == cls && e.bank_release == r.cycle;
}

void Controller::compact_heap(unsigned cls) const {
  auto& h = release_heaps_[cls];
  std::size_t keep = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (release_entry_live(cls, h[i])) h[keep++] = h[i];
  }
  h.resize(keep);
  std::make_heap(h.begin(), h.end(), [](const ReleaseEntry& a,
                                        const ReleaseEntry& b) {
    return a.cycle > b.cycle;
  });
}

void Controller::push_release(unsigned cls, std::uint64_t rel,
                              std::uint64_t id) const {
  auto& h = release_heaps_[cls];
  h.push_back(ReleaseEntry{rel, id});
  std::push_heap(h.begin(), h.end(), [](const ReleaseEntry& a,
                                        const ReleaseEntry& b) {
    return a.cycle > b.cycle;
  });
  // Dead records accumulate lazily; compact when they dominate.
  if (h.size() > 64 && h.size() > 4 * (queue_.size() + 1)) compact_heap(cls);
}

void Controller::refresh_entry(std::size_t pos) {
  QueueEntry& e = queue_[pos];
  const Bank& bank = banks_[e.coord.bank];
  const unsigned old_cls = class_of(e.cached_cmd);
  const std::uint64_t old_rel = e.bank_release;
  Command cmd;
  bool row_hit = false;
  if (bank.has_open_row() && bank.open_row() == e.coord.row) {
    cmd = e.req.type == AccessType::kRead ? Command::kRead : Command::kWrite;
    row_hit = true;
  } else if (!bank.has_open_row()) {
    cmd = Command::kActivate;
  } else {
    cmd = Command::kPrecharge;
  }
  // While an auto-precharge gates the bank the entry cannot lead a round;
  // the autopre term of next_event_cycle() covers the wake-up instead.
  const std::uint64_t rel =
      autopre_pending_[e.coord.bank] ? kNeverCycle : bank.earliest(cmd);
  e.cached_cmd = cmd;
  e.cached_row_hit = row_hit;
  e.bank_release = rel;
  const unsigned cls = class_of(cmd);
  if (rel != kNeverCycle && (cls != old_cls || rel != old_rel)) {
    push_release(cls, rel, e.req.id);
  }
  Candidate& c = candidates_[pos];
  c.queue_index = pos;
  c.bank = e.coord.bank;
  c.client_id = e.req.client_id;
  c.cmd = cmd;
  c.row_hit = row_hit;
  c.issuable = false;  // per-round bit, set by build_candidates()
  c.is_write = e.req.type == AccessType::kWrite;
}

void Controller::invalidate_bank(unsigned b) {
  if (!incremental_) return;
  for (const std::uint32_t pos : bank_entries_[b]) refresh_entry(pos);
}

void Controller::invalidate_all_banks() {
  if (!incremental_) return;
  for (unsigned b = 0; b < cfg_.banks; ++b) invalidate_bank(b);
}

void Controller::rebuild_sched_cache() {
  sched_cache_stale_ = false;
  for (auto& h : release_heaps_) h.clear();
  pos_of_id_.clear();
  for (auto& v : bank_entries_) v.clear();
  candidates_.assign(queue_.size(), Candidate{});
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    pos_of_id_[queue_[i].req.id] = static_cast<std::uint32_t>(i);
    bank_entries_[queue_[i].coord.bank].push_back(
        static_cast<std::uint32_t>(i));
    queue_[i].cached_cmd = Command::kRefresh;  // sentinel: force re-push
    queue_[i].bank_release = kNeverCycle;
    refresh_entry(i);
  }
}

void Controller::erase_queue_entry(std::size_t pos) {
  if (queue_[pos].req.type == AccessType::kWrite) --queued_writes_;
  streak_key_.erase(streak_key_.begin() + static_cast<std::ptrdiff_t>(pos));
  streak_client_.erase(streak_client_.begin() +
                       static_cast<std::ptrdiff_t>(pos));
  if (!incremental_ || sched_cache_stale_) {
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pos));
    return;
  }
  pos_of_id_.erase(queue_[pos].req.id);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pos));
  candidates_.erase(candidates_.begin() + static_cast<std::ptrdiff_t>(pos));
  for (std::size_t i = pos; i < queue_.size(); ++i) {
    pos_of_id_[queue_[i].req.id] = static_cast<std::uint32_t>(i);
    candidates_[i].queue_index = i;
  }
  for (auto& v : bank_entries_) v.clear();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    bank_entries_[queue_[i].coord.bank].push_back(
        static_cast<std::uint32_t>(i));
  }
}

bool Controller::open_row_wanted(unsigned b) const {
  if (incremental_ && !sched_cache_stale_) {
    // cached_row_hit mirrors "open row == entry row" and is refreshed on
    // every bank event, so the per-bank position list answers this without
    // walking the whole queue.
    for (const std::uint32_t pos : bank_entries_[b]) {
      if (queue_[pos].cached_row_hit) return true;
    }
    return false;
  }
  for (const QueueEntry& e : queue_) {
    if (e.coord.bank == b && e.coord.row == banks_[b].open_row()) return true;
  }
  return false;
}

void Controller::set_autopre(unsigned b) {
  if (!autopre_pending_[b]) {
    autopre_pending_[b] = true;
    ++autopre_count_;
  }
}

void Controller::clear_autopre(unsigned b) {
  if (autopre_pending_[b]) {
    autopre_pending_[b] = false;
    --autopre_count_;
  }
}

void Controller::maybe_reliability_refresh() {
  if (hooks_ == nullptr) return;
  const ReliabilityCounters c = hooks_->counters();
  const std::uint64_t events = c.rows_remapped + c.banks_retired;
  if (events != reliability_events_seen_) {
    // Graceful-degradation events (row remap, bank retire) can change
    // steering and row mappings out from under the cache; rebuilding on
    // the dirty flag is cheap because the events are rare.
    reliability_events_seen_ = events;
    if (incremental_) rebuild_sched_cache();
  }
}

void Controller::set_incremental_scheduling(bool on) {
  if (on == incremental_) return;
  incremental_ = on;
  if (on) {
    rebuild_sched_cache();
  } else {
    for (auto& h : release_heaps_) h.clear();
    pos_of_id_.clear();
    for (auto& v : bank_entries_) v.clear();
    candidates_.clear();
  }
}

// --- candidate construction -------------------------------------------------

const std::vector<Candidate>& Controller::build_candidates() {
  if (!incremental_) return build_candidates_rescan();
  // Structural fields (cmd / row_hit / bank) are maintained by
  // refresh_entry on the events that change them; each round only flips
  // the per-cycle issuable bits: one bank-release compare plus the three
  // channel-level releases computed once.
  const bool act_ok = cycle_ >= channel_act_release();
  const bool rd_ok = cycle_ >= channel_column_release(AccessType::kRead);
  const bool wr_ok = cycle_ >= channel_column_release(AccessType::kWrite);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const QueueEntry& e = queue_[i];
    bool ok = e.bank_release != kNeverCycle && cycle_ >= e.bank_release;
    if (ok) {
      switch (e.cached_cmd) {
        case Command::kRead:
          ok = rd_ok;
          break;
        case Command::kWrite:
          ok = wr_ok;
          break;
        case Command::kActivate:
          ok = act_ok;
          break;
        default:
          break;  // kPrecharge: bank-local only
      }
    }
    candidates_[i].issuable = ok;
  }
  return candidates_;
}

const std::vector<Candidate>& Controller::build_candidates_rescan() {
  std::vector<Candidate>& out = candidates_;
  out.clear();
  out.reserve(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const QueueEntry& e = queue_[i];
    const Bank& bank = banks_[e.coord.bank];
    Candidate c;
    c.queue_index = i;
    c.bank = e.coord.bank;
    c.client_id = e.req.client_id;
    c.is_write = e.req.type == AccessType::kWrite;
    if (bank.has_open_row() && bank.open_row() == e.coord.row) {
      c.cmd = e.req.type == AccessType::kRead ? Command::kRead
                                              : Command::kWrite;
      c.row_hit = true;
      c.issuable =
          bank.can_issue(c.cmd, cycle_) && column_legal(e.req.type, cycle_) &&
          !autopre_pending_[e.coord.bank];
    } else if (!bank.has_open_row()) {
      c.cmd = Command::kActivate;
      c.issuable = bank.can_issue(c.cmd, cycle_) &&
                   channel_act_legal(cycle_) &&
                   !autopre_pending_[e.coord.bank];
    } else {
      c.cmd = Command::kPrecharge;
      c.issuable = bank.can_issue(c.cmd, cycle_) &&
                   !autopre_pending_[e.coord.bank];
    }
    out.push_back(c);
  }
  return out;
}

void Controller::issue_column(QueueEntry& e, std::uint64_t cycle) {
  const auto& t = cfg_.timing;
  Bank& bank = banks_[e.coord.bank];
  const bool is_read = e.req.type == AccessType::kRead;
  bank.issue(is_read ? Command::kRead : Command::kWrite, e.coord.row, cycle);

  if (hooks_ != nullptr) {
    const AccessOutcome o = hooks_->on_access(e.coord, e.req.type, cycle);
    if (o == AccessOutcome::kCorrected) {
      e.req.ecc_corrected = true;
    } else if (o == AccessOutcome::kUncorrectable) {
      e.req.data_error = true;
    }
  }

  const std::uint64_t data_start = cycle + (is_read ? t.tCL : t.tWL);
  const std::uint64_t data_end = data_start + cfg_.data_cycles_per_access();
  bus_busy_until_ = data_end;
  last_data_end_ = data_end;
  last_dir_ = e.req.type;
  any_data_yet_ = true;

  log_command(CommandRecord{cycle, is_read ? Command::kRead : Command::kWrite,
                            e.coord.bank, e.coord.row, e.req.client_id,
                            cfg_.page_policy == PagePolicy::kClosed});

  stats_.data_bus_busy_cycles += cfg_.data_cycles_per_access();
  stats_.bytes_transferred += cfg_.bytes_per_access();
  if (is_read) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }

  // ECC decode sits in the controller's return pipeline: it delays the
  // data handed to the client, not the bus occupancy.
  e.req.done_cycle =
      data_end + (cfg_.ecc_enabled && is_read ? cfg_.ecc_latency_cycles : 0);
  EDSIM_TELEMETRY(telemetry_, on_request_issued(e.req, e.coord, cycle));
  EDSIM_TELEMETRY(telemetry_, on_request_data(e.req, data_start, data_end));
  inflight_.push_back(InFlight{e.req});
  inflight_min_done_ = std::min(inflight_min_done_, e.req.done_cycle);

  last_col_cycle_[e.coord.bank] = cycle;
  if (cfg_.page_policy == PagePolicy::kClosed) {
    set_autopre(e.coord.bank);
  }
}

bool Controller::tick_autoprecharge() {
  // Auto-precharge does not occupy the command bus (it is encoded in the
  // column command on real parts); apply it as soon as it becomes legal.
  if (autopre_count_ == 0) return false;
  bool any = false;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (autopre_pending_[b] && banks_[b].can_issue(Command::kPrecharge, cycle_)) {
      banks_[b].issue(Command::kPrecharge, 0, cycle_);
      ++stats_.precharges;
      clear_autopre(b);
      invalidate_bank(b);
      any = true;
    }
  }
  return any;
}

bool Controller::tick_refresh() {
  if (!refresh_.urgent(cycle_)) {
    refresh_draining_ = false;
    return false;
  }
  refresh_draining_ = true;
  // Precharge any open bank (one PRE per cycle on the command bus).
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (banks_[b].has_open_row()) {
      if (banks_[b].can_issue(Command::kPrecharge, cycle_)) {
        banks_[b].issue(Command::kPrecharge, 0, cycle_);
        clear_autopre(b);
        ++stats_.precharges;
        log_command(CommandRecord{cycle_, Command::kPrecharge, b, 0,
                                  CommandRecord::kNoClient, false});
        invalidate_bank(b);
      }
      return true;  // command slot consumed (or bank not yet ready)
    }
  }
  // All banks idle: issue REF when every bank is past its tRP window.
  for (const Bank& b : banks_) {
    if (!b.can_issue(Command::kRefresh, cycle_)) return true;  // wait
  }
  for (Bank& b : banks_) b.issue(Command::kRefresh, 0, cycle_);
  refresh_.refresh_issued(cycle_);
  if (hooks_ != nullptr) hooks_->on_refresh(cycle_);
  ++stats_.refreshes;
  log_command(CommandRecord{cycle_, Command::kRefresh, 0, 0,
                            CommandRecord::kNoClient, false});
  refresh_draining_ = false;
  invalidate_all_banks();
  return true;
}

bool Controller::bank_has_queued(unsigned b) const {
  if (incremental_ && !sched_cache_stale_) return !bank_entries_[b].empty();
  for (const QueueEntry& e : queue_) {
    if (e.coord.bank == b) return true;
  }
  return false;
}

bool Controller::maintenance_any_urgent() const {
  if (!self_managed_) return false;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (maint_until_[b] == 0 && hooks_->maintenance_urgent(b, cycle_)) {
      return true;
    }
  }
  return false;
}

void Controller::expire_maintenance_locks() {
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (maint_until_[b] != 0 && maint_until_[b] <= cycle_) {
      maint_until_[b] = 0;
      --maint_locked_;
      // No invalidate: block_until already left the bank's releases at
      // exactly the lock end, so cached entries stay correct.
      log_command(CommandRecord{cycle_, Command::kMaintEnd, b, 0,
                                CommandRecord::kNoClient, false});
    }
  }
}

bool Controller::tick_maintenance() {
  // SMD-style arbitration: maintenance takes *bank* slots, not the
  // channel. Banks with nothing queued donate idle slots as soon as work
  // is pending; past the deadline an op may preempt (close an open row
  // and take the bank). Claims are not bus commands, so several banks can
  // start maintenance in one cycle; only a preempting PRE costs the slot.
  bool slot_used = false;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (maint_until_[b] != 0) continue;  // already under maintenance
    if (hooks_->bank_retired(b)) continue;
    const bool urg = hooks_->maintenance_urgent(b, cycle_);
    if (!urg && !hooks_->maintenance_pending(b, cycle_)) continue;
    Bank& bank = banks_[b];
    if (bank.has_open_row()) {
      // Only a past-deadline op may close an open row (one PRE per cycle
      // on the command bus, mirroring the refresh drain).
      if (urg && !slot_used &&
          bank.can_issue(Command::kPrecharge, cycle_)) {
        bank.issue(Command::kPrecharge, 0, cycle_);
        clear_autopre(b);
        ++stats_.precharges;
        log_command(CommandRecord{cycle_, Command::kPrecharge, b, 0,
                                  CommandRecord::kNoClient, false});
        invalidate_bank(b);
        slot_used = true;
      }
      continue;
    }
    if (!urg && bank_has_queued(b)) continue;  // traffic keeps priority
    if (!bank.can_issue(Command::kMaintStart, cycle_)) continue;  // tRP/tRFC
    const unsigned dur = hooks_->maintenance_claim(b, cycle_);
    if (dur == 0) continue;
    // Lock region: the device owns the bank until cycle_ + dur. In-flight
    // data of earlier column commands is untouched — the lock only gates
    // future commands to this bank.
    bank.block_until(cycle_ + dur);
    maint_until_[b] = cycle_ + dur;
    ++maint_locked_;
    ++stats_.maintenance_ops;
    // CommandRecord.row carries the lock duration for kMaintStart (the
    // protocol checker derives the lock region from it).
    log_command(CommandRecord{cycle_, Command::kMaintStart, b, dur,
                              CommandRecord::kNoClient, false});
    invalidate_bank(b);
  }
  return slot_used;
}

std::uint64_t Controller::maintenance_event_bound() const {
  std::uint64_t ne = kNeverCycle;
  const auto upd = [&](std::uint64_t c) {
    ne = std::min(ne, std::max(c, cycle_));
  };
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (maint_until_[b] != 0) {
      upd(maint_until_[b]);  // lock expiry (kMaintEnd record)
      continue;
    }
    if (hooks_->bank_retired(b)) continue;
    if (hooks_->maintenance_urgent(b, cycle_)) {
      upd(banks_[b].has_open_row()
              ? banks_[b].earliest(Command::kPrecharge)
              : banks_[b].earliest(Command::kMaintStart));
    } else if (hooks_->maintenance_pending(b, cycle_) &&
               !banks_[b].has_open_row() && !bank_has_queued(b)) {
      upd(banks_[b].earliest(Command::kMaintStart));
    }
  }
  // Schedule changes on their own (bin due / deadline crossings).
  upd(hooks_->next_maintenance_cycle(cycle_));
  return ne;
}

void Controller::tick_watchdog() {
  if (!cfg_.watchdog_enabled || queue_.empty()) return;
  // queue_ is age-ordered, so the front entry is the starvation candidate.
  QueueEntry& oldest = queue_.front();
  if (cycle_ < oldest.wd_deadline) return;
  if (oldest.wd_retries >= cfg_.watchdog_retries) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "request id=%llu client=%u addr=0x%llx starved %llu cycles "
                  "(%u retries exhausted)",
                  static_cast<unsigned long long>(oldest.req.id),
                  oldest.req.client_id,
                  static_cast<unsigned long long>(oldest.req.addr),
                  static_cast<unsigned long long>(
                      cycle_ - oldest.req.arrival_cycle),
                  oldest.wd_retries);
    throw Error(ErrorKind::kRequestTimeout, cycle_, buf);
  }
  ++oldest.wd_retries;
  oldest.wd_deadline = cycle_ + cfg_.watchdog_cycles;
  ++stats_.watchdog_retries;
}

void Controller::retire_due_inflight() {
  auto it = inflight_.begin();
  while (it != inflight_.end()) {
    if (it->req.done_cycle <= cycle_) {
      Request& r = it->req;
      (r.type == AccessType::kRead ? stats_.read_latency
                                   : stats_.write_latency)
          .add(static_cast<double>(r.latency()));
      EDSIM_TELEMETRY(telemetry_, on_request_complete(r, cycle_));
      completed_.push_back(r);
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  inflight_min_done_ = kNeverCycle;
  for (const InFlight& f : inflight_) {
    inflight_min_done_ = std::min(inflight_min_done_, f.req.done_cycle);
  }
}

std::size_t Controller::dispatch_pick(const std::vector<Candidate>& candidates,
                                      std::uint64_t oldest_wait) const {
  // Every policy class is final: the static type makes each call below a
  // direct (inlinable) call instead of a per-round virtual dispatch.
  switch (cfg_.scheduler) {
    case SchedulerKind::kFcfs:
      return static_cast<const FcfsScheduler&>(*scheduler_)
          .pick(candidates, cycle_, oldest_wait);
    case SchedulerKind::kFcfsPerBank:
      return static_cast<const FcfsPerBankScheduler&>(*scheduler_)
          .pick(candidates, cycle_, oldest_wait);
    case SchedulerKind::kFrFcfs:
      return static_cast<const FrFcfsScheduler&>(*scheduler_)
          .pick(candidates, cycle_, oldest_wait);
    case SchedulerKind::kReadFirst:
      return static_cast<const ReadFirstScheduler&>(*scheduler_)
          .pick(candidates, cycle_, oldest_wait);
    case SchedulerKind::kTdm:
      return static_cast<const TdmScheduler&>(*scheduler_)
          .pick(candidates, cycle_, oldest_wait);
  }
  return scheduler_->pick(candidates, cycle_, oldest_wait);
}

void Controller::scheduler_note_pick() const {
  if (cfg_.scheduler == SchedulerKind::kReadFirst) {
    static_cast<const ReadFirstScheduler&>(*scheduler_)
        .note_writes(queued_writes_);
  }
}

void Controller::tick() {
  // Re-arm the incremental caches if a burst stretch left them stale —
  // everything below (candidate rounds, watchdog erases, refresh picks)
  // assumes they mirror the queue.
  if (incremental_ && sched_cache_stale_) rebuild_sched_cache();
  stats_.queue_occupancy.add(static_cast<double>(queue_.size()));
  if (hooks_ != nullptr) hooks_->on_cycle(cycle_);

  // Maintenance locks expire before anything else can consult bank state
  // (including the power-down block), so a stale lock never gates a tick.
  if (maint_locked_ != 0) expire_maintenance_locks();

  // --- power-down management -------------------------------------------------
  if (cfg_.powerdown_enabled) {
    const bool has_work = !queue_.empty() || !inflight_.empty();
    if (powered_down_) {
      // Refresh urgency, maintenance deadlines or new work wake the
      // device after tXP.
      if (has_work || refresh_.urgent(cycle_) || maintenance_any_urgent()) {
        powered_down_ = false;
        wake_until_ = cycle_ + cfg_.tXP;
      } else {
        ++stats_.powerdown_cycles;
        ++cycle_;
        ++stats_.cycles;
        notify_tick();
        return;
      }
    } else if (!has_work) {
      if (!was_idle_) {
        was_idle_ = true;
        idle_since_ = cycle_;
      }
      // All banks must be precharged before entry; close any open row
      // (this consumes the command slot, like an explicit PRE). Never
      // enter while a maintenance op runs or is overdue — non-urgent
      // pending work simply defers to its deadline, which wakes us.
      if (cycle_ - idle_since_ >= cfg_.powerdown_idle_cycles &&
          !refresh_.urgent(cycle_) && maint_locked_ == 0 &&
          !maintenance_any_urgent()) {
        bool all_idle = true;
        for (unsigned b = 0; b < cfg_.banks; ++b) {
          if (banks_[b].has_open_row()) {
            all_idle = false;
            if (banks_[b].can_issue(Command::kPrecharge, cycle_)) {
              banks_[b].issue(Command::kPrecharge, 0, cycle_);
              clear_autopre(b);
              ++stats_.precharges;
              log_command(CommandRecord{cycle_, Command::kPrecharge, b, 0,
                                        CommandRecord::kNoClient, false});
              invalidate_bank(b);
            }
            break;  // one command per cycle
          }
        }
        if (all_idle) powered_down_ = true;
        ++cycle_;
        ++stats_.cycles;
        if (powered_down_) ++stats_.powerdown_cycles;
        notify_tick();
        return;
      }
    } else {
      was_idle_ = false;
    }
    if (cycle_ < wake_until_) {
      // Exiting power-down: no commands yet.
      ++cycle_;
      ++stats_.cycles;
      notify_tick();
      return;
    }
  }

  // 1. Retire in-flight requests whose data finished. The cached minimum
  // makes the common nothing-finished cycle a single compare.
  if (!inflight_.empty() && inflight_min_done_ <= cycle_) {
    retire_due_inflight();
  }

  // 2. Hardware auto-precharge (no command-bus cost).
  tick_autoprecharge();

  // 2b. Watchdog: escalate or fail a starving request.
  tick_watchdog();

  // 2c. Reliability dirty flag: remap/retire invalidates the cache wholesale.
  maybe_reliability_refresh();

  // 3. Refresh has absolute priority once due. In self-managed mode the
  // REF sweep is replaced by maintenance arbitration over idle bank slots.
  if (!(self_managed_ ? tick_maintenance() : tick_refresh())) {
    // 4. Normal scheduling: one command this cycle.
    const auto& candidates = build_candidates();
    const std::uint64_t oldest_wait =
        queue_.empty() ? 0 : cycle_ - queue_.front().req.arrival_cycle;
    std::size_t pick;
    if (cfg_.watchdog_enabled && !queue_.empty() &&
        queue_.front().wd_retries > 0 &&
        cfg_.scheduler != SchedulerKind::kTdm) {
      // An escalated request owns the command slot until it completes:
      // candidates are age-ordered, so its candidate is index 0. Under TDM
      // the escalation still routes through the scheduler — slot ownership
      // is inviolate (that isolation is the policy's entire guarantee), and
      // the rotation itself bounds how long the front entry can wait.
      pick = candidates.front().issuable ? 0 : Scheduler::kNone;
    } else {
      pick = dispatch_pick(candidates, oldest_wait);
    }
    if (pick == Scheduler::kNone &&
        cfg_.page_policy == PagePolicy::kTimeout) {
      // Idle command slot: close any row that has been open and unused
      // past the timeout. Never preempts real work (pick was kNone).
      for (unsigned b = 0; b < cfg_.banks; ++b) {
        if (banks_[b].has_open_row() &&
            cycle_ >= last_col_cycle_[b] + cfg_.page_timeout_cycles &&
            banks_[b].can_issue(Command::kPrecharge, cycle_)) {
          // Only close rows no queued request still wants.
          if (open_row_wanted(b)) continue;
          banks_[b].issue(Command::kPrecharge, 0, cycle_);
          ++stats_.precharges;
          log_command(CommandRecord{cycle_, Command::kPrecharge, b, 0,
                                    CommandRecord::kNoClient, false});
          invalidate_bank(b);
          break;  // one command per cycle
        }
      }
    }
    if (pick != Scheduler::kNone) {
      const Candidate c = candidates[pick];  // copy: issue paths edit the list
      QueueEntry& e = queue_[c.queue_index];
      Bank& bank = banks_[e.coord.bank];
      classify(e, bank);
      switch (c.cmd) {
        case Command::kActivate:
          bank.issue(Command::kActivate, e.coord.row, cycle_);
          ++stats_.activations;
          last_act_cycle_ = cycle_;
          any_act_yet_ = true;
          recent_acts_.push_back(cycle_);
          if (recent_acts_.size() > 8) recent_acts_.pop_front();
          log_command(CommandRecord{cycle_, Command::kActivate, e.coord.bank,
                                    e.coord.row, e.req.client_id, false});
          if (hooks_ != nullptr) {
            hooks_->on_activate(e.coord.bank, e.coord.row, cycle_);
          }
          invalidate_bank(c.bank);
          break;
        case Command::kPrecharge:
          bank.issue(Command::kPrecharge, 0, cycle_);
          ++stats_.precharges;
          log_command(
              CommandRecord{cycle_, Command::kPrecharge, e.coord.bank, 0,
                            e.req.client_id, false});
          invalidate_bank(c.bank);
          break;
        case Command::kRead:
        case Command::kWrite: {
          issue_column(e, cycle_);
          erase_queue_entry(c.queue_index);
          invalidate_bank(c.bank);
          break;
        }
        case Command::kRefresh:
        case Command::kMaintStart:
        case Command::kMaintEnd:
          break;  // unreachable: never scheduler candidates
      }
    }
  }

  ++cycle_;
  ++stats_.cycles;
  if (hooks_ != nullptr) stats_.reliability = hooks_->counters();
  notify_tick();
}

std::vector<Request> Controller::drain_completed() {
  std::vector<Request> out;
  drain_completed_into(out);
  return out;
}

void Controller::drain_completed_into(std::vector<Request>& out) {
  out.clear();
  out.insert(out.end(), completed_.begin(), completed_.end());
  completed_.clear();
}

std::uint64_t Controller::next_event_cycle() const {
  if (!incremental_ || sched_cache_stale_) return next_event_cycle_rescan();
  std::uint64_t ne = kNeverCycle;
  const auto upd = [&](std::uint64_t c) {
    ne = std::min(ne, std::max(c, cycle_));
  };
  const bool has_work = !queue_.empty() || !inflight_.empty();

  if (cfg_.powerdown_enabled) {
    if (powered_down_) {
      // Only new work (caller-driven), refresh urgency or a maintenance
      // deadline wakes the device (locks are never live while down).
      if (has_work) return cycle_;
      upd(refresh_.next_urgent_cycle(cycle_));
      if (self_managed_) upd(hooks_->next_maintenance_cycle(cycle_));
      return ne;
    }
    if (cycle_ < wake_until_) {
      // Exiting power-down: every tick until tXP elapses is bookkeeping
      // (watchdog and refresh paths are behind the same early return).
      return wake_until_;
    }
    if (!has_work) {
      // Power-down entry fires once the idle streak reaches the threshold;
      // if the streak has not started, the next tick starts it at cycle_.
      upd((was_idle_ ? idle_since_ : cycle_) + cfg_.powerdown_idle_cycles);
    }
  }

  // In-flight data completions (cached minimum, kNeverCycle when empty).
  if (inflight_min_done_ != kNeverCycle) upd(inflight_min_done_);

  // Refresh urgency / self-managed maintenance deadlines and claims.
  upd(refresh_.next_urgent_cycle(cycle_));
  if (self_managed_) upd(maintenance_event_bound());

  // Pending hardware auto-precharges (skipped outright when none pending).
  if (autopre_count_ != 0) {
    for (unsigned b = 0; b < cfg_.banks; ++b) {
      if (autopre_pending_[b]) upd(banks_[b].earliest(Command::kPrecharge));
    }
  }

  // Watchdog deadline of the oldest queued request.
  if (cfg_.watchdog_enabled && !queue_.empty()) {
    upd(queue_.front().wd_deadline);
  }

  // Page-timeout closes of idle open rows (per-bank position lists answer
  // the "still wanted" test without walking the whole queue).
  if (cfg_.page_policy == PagePolicy::kTimeout) {
    for (unsigned b = 0; b < cfg_.banks; ++b) {
      if (!banks_[b].has_open_row()) continue;
      if (open_row_wanted(b)) continue;
      upd(std::max(last_col_cycle_[b] + cfg_.page_timeout_cycles,
                   banks_[b].earliest(Command::kPrecharge)));
    }
  }

  // Queue releases: min over entries of max(bank release, channel release)
  // equals max(min bank release, channel release) within each command
  // class, so four cached heap minima replace the per-entry rescan.
  const auto cmp = [](const ReleaseEntry& a, const ReleaseEntry& b) {
    return a.cycle > b.cycle;
  };
  for (unsigned cls = 0; cls < kClassCount; ++cls) {
    auto& h = release_heaps_[cls];
    while (!h.empty() && !release_entry_live(cls, h.front())) {
      std::pop_heap(h.begin(), h.end(), cmp);
      h.pop_back();
    }
    if (h.empty()) continue;
    std::uint64_t rel = h.front().cycle;
    switch (cls) {
      case kClassAct:
        rel = std::max(rel, channel_act_release());
        break;
      case kClassColRead:
        rel = std::max(rel, channel_column_release(AccessType::kRead));
        break;
      case kClassColWrite:
        rel = std::max(rel, channel_column_release(AccessType::kWrite));
        break;
      default:
        break;  // kClassPre: bank-local only
    }
    upd(rel);
  }

  return ne;
}

std::uint64_t Controller::next_event_cycle_rescan() const {
  std::uint64_t ne = kNeverCycle;
  const auto upd = [&](std::uint64_t c) {
    ne = std::min(ne, std::max(c, cycle_));
  };
  const bool has_work = !queue_.empty() || !inflight_.empty();

  if (cfg_.powerdown_enabled) {
    if (powered_down_) {
      // Only new work (caller-driven), refresh urgency or a maintenance
      // deadline wakes the device (locks are never live while down).
      if (has_work) return cycle_;
      upd(refresh_.next_urgent_cycle(cycle_));
      if (self_managed_) upd(hooks_->next_maintenance_cycle(cycle_));
      return ne;
    }
    if (cycle_ < wake_until_) {
      // Exiting power-down: every tick until tXP elapses is bookkeeping
      // (watchdog and refresh paths are behind the same early return).
      return wake_until_;
    }
    if (!has_work) {
      // Power-down entry fires once the idle streak reaches the threshold;
      // if the streak has not started, the next tick starts it at cycle_.
      upd((was_idle_ ? idle_since_ : cycle_) + cfg_.powerdown_idle_cycles);
    }
  }

  // In-flight data completions.
  for (const InFlight& f : inflight_) upd(f.req.done_cycle);

  // Refresh urgency / self-managed maintenance deadlines and claims.
  upd(refresh_.next_urgent_cycle(cycle_));
  if (self_managed_) upd(maintenance_event_bound());

  // Pending hardware auto-precharges.
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (autopre_pending_[b]) upd(banks_[b].earliest(Command::kPrecharge));
  }

  // Watchdog deadline of the oldest queued request.
  if (cfg_.watchdog_enabled && !queue_.empty()) {
    upd(queue_.front().wd_deadline);
  }

  // Page-timeout closes of idle open rows. Rows a queued request still
  // wants are never closed by this policy, and the queue cannot change
  // during a skip, so they contribute no event.
  if (cfg_.page_policy == PagePolicy::kTimeout) {
    for (unsigned b = 0; b < cfg_.banks; ++b) {
      if (!banks_[b].has_open_row()) continue;
      bool wanted = false;
      for (const QueueEntry& e : queue_) {
        wanted = wanted ||
                 (e.coord.bank == b && e.coord.row == banks_[b].open_row());
      }
      if (wanted) continue;
      upd(std::max(last_col_cycle_[b] + cfg_.page_timeout_cycles,
                   banks_[b].earliest(Command::kPrecharge)));
    }
  }

  // Earliest cycle each queued request's next command becomes legal. Bank
  // and bus state are frozen during a skip (no commands issue), so these
  // releases stay valid until the skip ends. The bound is conservative:
  // the scheduler may still decline (e.g. FCFS head-of-line blocking),
  // which only shortens the skip, never corrupts it.
  const auto& t = cfg_.timing;
  for (const QueueEntry& e : queue_) {
    if (autopre_pending_[e.coord.bank]) continue;  // gated by autopre above
    const Bank& bank = banks_[e.coord.bank];
    if (bank.has_open_row() && bank.open_row() == e.coord.row) {
      std::uint64_t rel = bank.earliest(
          e.req.type == AccessType::kRead ? Command::kRead : Command::kWrite);
      if (e.req.type == AccessType::kRead) {
        rel = std::max(rel, sat_sub(bus_busy_until_, t.tCL));
        if (any_data_yet_ && last_dir_ == AccessType::kWrite) {
          rel = std::max(rel, last_data_end_ + t.tWTR);
        }
      } else {
        rel = std::max(rel, sat_sub(bus_busy_until_, t.tWL));
        if (any_data_yet_ && last_dir_ == AccessType::kRead) {
          rel = std::max(rel, sat_sub(last_data_end_ + t.tRTW, t.tWL));
        }
      }
      upd(rel);
    } else if (!bank.has_open_row()) {
      std::uint64_t rel = bank.earliest(Command::kActivate);
      if (any_act_yet_) rel = std::max(rel, last_act_cycle_ + t.tRRD);
      if (t.tFAW != 0 && recent_acts_.size() >= 4) {
        rel = std::max(rel, recent_acts_[recent_acts_.size() - 4] + t.tFAW);
      }
      upd(rel);
    } else {
      upd(bank.earliest(Command::kPrecharge));
    }
  }

  return ne;
}

void Controller::advance_idle(std::uint64_t count) {
  if (count == 0) return;
  stats_.queue_occupancy.add_repeated(static_cast<double>(queue_.size()),
                                      count);
  if (hooks_ != nullptr) hooks_->on_idle_cycles(cycle_, cycle_ + count);

  // Replicate the per-tick power-down bookkeeping for a quiet stretch.
  // The regime (powered down / waking / normal) is constant across it:
  // every transition is an event, so skips never straddle one. The
  // reliability-counter mirror matches tick()'s early returns — powered-
  // down and waking ticks leave stats_.reliability stale, full ticks
  // refresh it.
  bool full_path = true;
  if (cfg_.powerdown_enabled) {
    const bool has_work = !queue_.empty() || !inflight_.empty();
    if (powered_down_) {
      stats_.powerdown_cycles += count;
      full_path = false;
    } else {
      if (!has_work) {
        if (!was_idle_) {
          was_idle_ = true;
          idle_since_ = cycle_;
        }
      } else {
        was_idle_ = false;
      }
      if (cycle_ < wake_until_) full_path = false;
    }
  }

  const std::uint64_t from = cycle_;
  cycle_ += count;
  stats_.cycles += count;
  if (full_path && hooks_ != nullptr) stats_.reliability = hooks_->counters();
  EDSIM_TELEMETRY(telemetry_, on_bulk_advance(from, tick_sample(), stats_));
}

std::uint64_t Controller::issue_burst(std::uint64_t target_cycle,
                                      bool stop_after_event) {
  // Eligibility gates: any condition that could make a cycle in the
  // stretch do something other than {quiet bookkeeping, a row-hit column
  // issue to the streak bank, an in-flight retirement} falls back to the
  // fully general tick() path. Reliability hooks observe every cycle and
  // can mutate the stream, so their presence disables the path outright.
  if (!burst_issue_ || hooks_ != nullptr || queue_.empty()) return 0;
  if (cfg_.page_policy == PagePolicy::kClosed) return 0;
  if (autopre_count_ != 0 || refresh_draining_) return 0;
  if (cfg_.powerdown_enabled && (powered_down_ || cycle_ < wake_until_)) {
    return 0;
  }
  // Branch-light streak probe over the packed SoA mirror: the whole queue
  // must target one (bank, row, direction).
  const std::size_t n = queue_.size();
  const std::uint64_t key = streak_key_[0];
  std::uint64_t mism = 0;
  for (std::size_t i = 1; i < n; ++i) mism |= streak_key_[i] ^ key;
  if (mism != 0) return 0;
  const unsigned bank = static_cast<unsigned>(key >> 33);
  const unsigned row = static_cast<unsigned>((key >> 1) & 0xffffffffu);
  const bool is_write = (key & 1) != 0;
  Bank& bk = banks_[bank];
  if (!bk.has_open_row() || bk.open_row() != row) return 0;
  if (cfg_.page_policy == PagePolicy::kTimeout) {
    // Another bank's idle open row would be closed by the page-timeout
    // sweep mid-stretch; the streak bank's own row is always wanted.
    for (unsigned b = 0; b < cfg_.banks; ++b) {
      if (b != bank && banks_[b].has_open_row()) return 0;
    }
  }
  // TDM: the streak must belong to one slot class, and issue cycles snap
  // forward to that class's slots.
  unsigned tdm_slot_cycles = 0;
  unsigned tdm_slots = 0;
  unsigned tdm_cls = 0;
  if (cfg_.scheduler == SchedulerKind::kTdm) {
    const auto& tdm = static_cast<const TdmScheduler&>(*scheduler_);
    tdm_slot_cycles = tdm.slot_cycles();
    tdm_slots = tdm.num_slots();
    tdm_cls = streak_client_[0] % tdm_slots;
    for (std::size_t i = 1; i < n; ++i) {
      if (streak_client_[i] % tdm_slots != tdm_cls) return 0;
    }
  }
  // Hard ceiling: the first cycle whose tick is NOT pure streak progress.
  // Refresh urgency is constant across the stretch (urgent() batches
  // lazily and next_due_ cannot move before it first fires).
  std::uint64_t limit = target_cycle;
  if (cfg_.refresh_enabled) {
    limit = std::min(limit, refresh_.next_urgent_cycle(cycle_));
  }

  const Command col = is_write ? Command::kWrite : Command::kRead;
  const AccessType dir = is_write ? AccessType::kWrite : AccessType::kRead;
  const std::uint64_t start = cycle_;
  while (!queue_.empty()) {
    // Watchdog: the escalation tick at the front deadline needs the
    // general path; deadlines are age-ordered so re-deriving from the
    // current front after each erase keeps the bound exact.
    std::uint64_t lim = limit;
    if (cfg_.watchdog_enabled) {
      if (queue_.front().wd_retries != 0) break;
      lim = std::min(lim, queue_.front().wd_deadline);
    }
    // Closed-form next events: the only things that can happen in this
    // regime are the next column issue and an in-flight retirement.
    std::uint64_t ni =
        std::max(cycle_,
                 std::max(bk.earliest(col), channel_column_release(dir)));
    if (tdm_slots != 0) {
      const std::uint64_t slot = ni / tdm_slot_cycles;
      const std::uint64_t delta =
          (tdm_cls + tdm_slots - slot % tdm_slots) % tdm_slots;
      if (delta != 0) ni = (slot + delta) * tdm_slot_cycles;
    }
    const std::uint64_t ev = std::min(ni, inflight_min_done_);
    if (ev >= lim) break;
    // Every cycle in (cycle_, ev) is pure bookkeeping — exactly
    // advance_idle's contract. Scheduler rounds skipped here are
    // hysteresis-idempotent for a fixed queue composition; the note at
    // the issue (or the next real tick) lands the identical state.
    if (ev > cycle_) advance_idle(ev - cycle_);
    // Lite tick at `ev`, in tick()'s exact order. The general-path gates
    // (maintenance, auto-precharge, watchdog, refresh, page-timeout
    // closes) are all provably inert here; the scheduler round reduces to
    // the front pick the homogeneous streak guarantees for every policy.
    stats_.queue_occupancy.add(static_cast<double>(queue_.size()));
    if (cfg_.powerdown_enabled) was_idle_ = false;
    if (!inflight_.empty() && inflight_min_done_ <= cycle_) {
      retire_due_inflight();
    }
    if (ni == cycle_) {
      scheduler_note_pick();
      QueueEntry& e = queue_.front();
      classify(e, bk);
      issue_column(e, cycle_);
      // Deferred cache maintenance: the closed-form path never consults
      // the incremental caches, so instead of refreshing ~queue_depth
      // same-bank entries per issue they go stale here and are rebuilt
      // once when the general path resumes (see sched_cache_stale_).
      if (incremental_) sched_cache_stale_ = true;
      erase_queue_entry(0);
    }
    ++cycle_;
    ++stats_.cycles;
    notify_tick();
    // Every lite tick issues or retires (ev is one of the two), so in
    // stop-after-event mode the first iteration is also the last.
    if (stop_after_event) break;
  }
  return cycle_ - start;
}

void Controller::tick_until(std::uint64_t target_cycle) {
  while (cycle_ < target_cycle) {
    // Dense steady state: retire the stretch's issues in closed form.
    if (issue_burst(target_cycle) != 0) continue;
    // One real tick settles same-cycle transitions (idle-streak starts,
    // scheduler hysteresis, lazy refresh batching) before any skip.
    tick();
    if (cycle_ >= target_cycle) break;
    const std::uint64_t ne = next_event_cycle();
    if (ne > cycle_) advance_idle(std::min(ne, target_cycle) - cycle_);
  }
}

void Controller::dense_advance(std::uint64_t bound) {
  while (cycle_ < bound) {
    // The burst lite tick is itself an event (issue and/or retire): one
    // iteration, then hand the cycle after it back to the front end.
    if (issue_burst(bound, /*stop_after_event=*/true) != 0) return;
    // General path: a real tick, with the front-end-visible transitions
    // detected by their only possible footprints — a queue slot freed
    // (column issue, invalidation) or a retirement into the completed
    // list. Anything else (ACT/PRE, refresh, maintenance, power-down) is
    // invisible to the front end and the stretch continues.
    const std::size_t q0 = queue_.size();
    const std::size_t c0 = completed_.size();
    tick();
    if (queue_.size() < q0 || completed_.size() != c0) return;
    if (cycle_ >= bound) return;
    const std::uint64_t ne = next_event_cycle();
    if (ne > cycle_) advance_idle(std::min(ne, bound) - cycle_);
  }
}

void Controller::drain(std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  while (!idle() && cycle_ < limit) {
    tick();
    if (idle() || cycle_ >= limit) break;
    const std::uint64_t ne = next_event_cycle();
    if (ne > cycle_) advance_idle(std::min(ne, limit) - cycle_);
  }
  require(idle(), "Controller::drain: did not converge (deadlock?)");
}

// --- snapshot serialization -------------------------------------------------

namespace {

void save_request(SnapshotWriter& w, const Request& q) {
  w.u64(q.id);
  w.u32(q.client_id);
  w.boolean(q.type == AccessType::kWrite);
  w.u64(q.addr);
  w.u64(q.arrival_cycle);
  w.u64(q.done_cycle);
  w.u64(q.tag);
  w.boolean(q.ecc_corrected);
  w.boolean(q.data_error);
}

Request load_request(SnapshotReader& r) {
  Request q;
  q.id = r.u64();
  q.client_id = r.u32();
  q.type = r.boolean() ? AccessType::kWrite : AccessType::kRead;
  q.addr = r.u64();
  q.arrival_cycle = r.u64();
  q.done_cycle = r.u64();
  q.tag = r.u64();
  q.ecc_corrected = r.boolean();
  q.data_error = r.boolean();
  return q;
}

void save_controller_stats(SnapshotWriter& w, const ControllerStats& s) {
  w.u64(s.cycles);
  w.u64(s.reads);
  w.u64(s.writes);
  w.u64(s.row_hits);
  w.u64(s.row_misses);
  w.u64(s.row_conflicts);
  w.u64(s.activations);
  w.u64(s.precharges);
  w.u64(s.refreshes);
  w.u64(s.data_bus_busy_cycles);
  w.u64(s.bytes_transferred);
  w.u64(s.powerdown_cycles);
  w.u64(s.redirected_requests);
  w.u64(s.watchdog_retries);
  w.u64(s.maintenance_ops);
  s.reliability.save(w);
  s.read_latency.save(w);
  s.write_latency.save(w);
  s.queue_occupancy.save(w);
}

void load_controller_stats(SnapshotReader& r, ControllerStats& s) {
  s.cycles = r.u64();
  s.reads = r.u64();
  s.writes = r.u64();
  s.row_hits = r.u64();
  s.row_misses = r.u64();
  s.row_conflicts = r.u64();
  s.activations = r.u64();
  s.precharges = r.u64();
  s.refreshes = r.u64();
  s.data_bus_busy_cycles = r.u64();
  s.bytes_transferred = r.u64();
  s.powerdown_cycles = r.u64();
  s.redirected_requests = r.u64();
  s.watchdog_retries = r.u64();
  s.maintenance_ops = r.u64();
  s.reliability.load(r);
  s.read_latency.load(r);
  s.write_latency.load(r);
  s.queue_occupancy.load(r);
}

}  // namespace

void Controller::save(SnapshotWriter& w) const {
  // Geometry guard: restore requires a controller built from the same
  // DramConfig; the bank count catches the gross mismatches cheaply.
  w.u32(cfg_.banks);

  for (const Bank& b : banks_) b.save(w);
  for (unsigned b = 0; b < cfg_.banks; ++b) w.boolean(autopre_pending_[b]);
  for (const std::uint64_t c : last_col_cycle_) w.u64(c);
  scheduler_->save(w);
  refresh_.save(w);

  w.u64(queue_.size());
  for (const QueueEntry& e : queue_) {
    save_request(w, e.req);
    w.u32(e.coord.bank);
    w.u32(e.coord.row);
    w.u32(e.coord.column);
    w.boolean(e.classified);
    w.u32(e.wd_retries);
    w.u64(e.wd_deadline);
    // cached_cmd / cached_row_hit / bank_release are rebuilt on load.
  }
  w.u64(inflight_.size());
  for (const InFlight& f : inflight_) save_request(w, f.req);
  w.u64(completed_.size());
  for (const Request& q : completed_) save_request(w, q);

  w.u64(reliability_events_seen_);
  w.u64(cycle_);
  w.u64(next_id_);

  w.u64(last_act_cycle_);
  w.boolean(any_act_yet_);
  w.u64(recent_acts_.size());
  for (const std::uint64_t c : recent_acts_) w.u64(c);

  w.u64(bus_busy_until_);
  w.u64(last_data_end_);
  w.boolean(last_dir_ == AccessType::kWrite);
  w.boolean(any_data_yet_);

  w.boolean(refresh_draining_);
  for (const std::uint64_t c : maint_until_) w.u64(c);
  w.u32(maint_locked_);

  w.boolean(powered_down_);
  w.u64(idle_since_);
  w.u64(wake_until_);
  w.boolean(was_idle_);

  save_controller_stats(w, stats_);
}

void Controller::load(SnapshotReader& r) {
  if (r.u32() != cfg_.banks) {
    r.fail("controller snapshot bank count mismatch");
  }

  for (Bank& b : banks_) b.load(r);
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    autopre_pending_[b] = r.boolean();
  }
  for (std::uint64_t& c : last_col_cycle_) c = r.u64();
  scheduler_->load(r);
  refresh_.load(r);

  queue_.clear();
  const std::uint64_t queued = r.u64();
  if (queued > cfg_.queue_depth) r.fail("queued request count out of range");
  queue_.reserve(queued);
  for (std::uint64_t i = 0; i < queued; ++i) {
    QueueEntry e;
    e.req = load_request(r);
    e.coord.bank = r.u32();
    e.coord.row = r.u32();
    e.coord.column = r.u32();
    if (e.coord.bank >= cfg_.banks) r.fail("queued bank out of range");
    e.classified = r.boolean();
    e.wd_retries = r.u32();
    e.wd_deadline = r.u64();
    queue_.push_back(e);
  }
  inflight_.clear();
  const std::uint64_t inflight = r.u64();
  inflight_.reserve(inflight);
  for (std::uint64_t i = 0; i < inflight; ++i) {
    inflight_.push_back(InFlight{load_request(r)});
  }
  completed_.clear();
  const std::uint64_t completed = r.u64();
  completed_.reserve(completed);
  for (std::uint64_t i = 0; i < completed; ++i) {
    completed_.push_back(load_request(r));
  }

  reliability_events_seen_ = r.u64();
  cycle_ = r.u64();
  next_id_ = r.u64();

  last_act_cycle_ = r.u64();
  any_act_yet_ = r.boolean();
  recent_acts_.clear();
  const std::uint64_t acts = r.u64();
  if (acts > 8) r.fail("recent-activate window out of range");
  for (std::uint64_t i = 0; i < acts; ++i) recent_acts_.push_back(r.u64());

  bus_busy_until_ = r.u64();
  last_data_end_ = r.u64();
  last_dir_ = r.boolean() ? AccessType::kWrite : AccessType::kRead;
  any_data_yet_ = r.boolean();

  refresh_draining_ = r.boolean();
  for (std::uint64_t& c : maint_until_) c = r.u64();
  maint_locked_ = r.u32();

  powered_down_ = r.boolean();
  idle_since_ = r.u64();
  wake_until_ = r.u64();
  was_idle_ = r.boolean();

  load_controller_stats(r, stats_);

  // Derived caches: recompute rather than trust the stream.
  streak_key_.clear();
  streak_client_.clear();
  queued_writes_ = 0;
  for (const QueueEntry& e : queue_) {
    streak_key_.push_back((static_cast<std::uint64_t>(e.coord.bank) << 33) |
                          (static_cast<std::uint64_t>(e.coord.row) << 1) |
                          (e.req.type == AccessType::kWrite ? 1u : 0u));
    streak_client_.push_back(e.req.client_id);
    if (e.req.type == AccessType::kWrite) ++queued_writes_;
  }
  autopre_count_ = 0;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (autopre_pending_[b]) ++autopre_count_;
  }
  inflight_min_done_ = kNeverCycle;
  for (const InFlight& f : inflight_) {
    inflight_min_done_ = std::min(inflight_min_done_, f.req.done_cycle);
  }
  if (incremental_) {
    rebuild_sched_cache();
  } else {
    for (auto& h : release_heaps_) h.clear();
    pos_of_id_.clear();
    for (auto& v : bank_entries_) v.clear();
    candidates_.clear();
  }
}

}  // namespace edsim::dram
