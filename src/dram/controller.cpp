#include "dram/controller.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace edsim::dram {

Controller::Controller(const DramConfig& cfg)
    : cfg_(cfg),
      mapper_(cfg),
      scheduler_(Scheduler::make(cfg.scheduler)),
      refresh_(cfg_.timing, cfg.refresh_enabled, cfg.refresh_burst) {
  cfg_.validate();
  banks_.reserve(cfg_.banks);
  for (unsigned b = 0; b < cfg_.banks; ++b) banks_.emplace_back(cfg_.timing);
  autopre_pending_.assign(cfg_.banks, false);
  last_col_cycle_.assign(cfg_.banks, 0);
}

void Controller::log_command(const CommandRecord& rec) {
  if (command_log_ != nullptr) command_log_->record(rec);
  EDSIM_TELEMETRY(telemetry_, on_command(rec));
}

TickSample Controller::tick_sample() const {
  TickSample s;
  s.cycle = cycle_;
  s.queue_depth = static_cast<std::uint32_t>(queue_.size());
  std::uint32_t open = 0;
  for (const Bank& b : banks_) open += b.has_open_row() ? 1u : 0u;
  s.open_banks = open;
  return s;
}

void Controller::notify_tick() {
  if (telemetry_ != nullptr) telemetry_->on_cycle_advance(tick_sample(), stats_);
}

bool Controller::all_banks_retired() const {
  if (hooks_ == nullptr) return false;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (!hooks_->bank_retired(b)) return false;
  }
  return true;
}

bool Controller::enqueue(Request req) {
  if (queue_full()) return false;
  req.id = next_id_++;
  req.arrival_cycle = cycle_;
  QueueEntry e;
  e.coord = mapper_.decode(req.addr);
  e.req = req;
  if (hooks_ != nullptr && hooks_->bank_retired(e.coord.bank)) {
    // Graceful degradation: steer around the dead bank. Capacity is lost
    // (aliasing into the fallback bank), but traffic keeps flowing.
    unsigned fallback = e.coord.bank;
    for (unsigned i = 1; i < cfg_.banks; ++i) {
      const unsigned b = (e.coord.bank + i) % cfg_.banks;
      if (!hooks_->bank_retired(b)) {
        fallback = b;
        break;
      }
    }
    if (fallback == e.coord.bank) return false;  // every bank is gone
    e.coord.bank = fallback;
    ++stats_.redirected_requests;
  }
  if (cfg_.watchdog_enabled) {
    e.wd_deadline = cycle_ + cfg_.watchdog_cycles;
  }
  queue_.push_back(e);
  EDSIM_TELEMETRY(telemetry_, on_request_enqueued(queue_.back().req,
                                                  queue_.back().coord, cycle_));
  return true;
}

void Controller::reset_stats() {
  stats_ = ControllerStats{};
}

void Controller::classify(QueueEntry& e, const Bank& bank) {
  if (e.classified) return;
  e.classified = true;
  if (bank.has_open_row() && bank.open_row() == e.coord.row) {
    ++stats_.row_hits;
  } else if (!bank.has_open_row()) {
    ++stats_.row_misses;
  } else {
    ++stats_.row_conflicts;
  }
}

bool Controller::channel_act_legal(std::uint64_t cycle) const {
  if (any_act_yet_ && cycle < last_act_cycle_ + cfg_.timing.tRRD) return false;
  if (cfg_.timing.tFAW != 0 && recent_acts_.size() >= 4 &&
      cycle < recent_acts_[recent_acts_.size() - 4] + cfg_.timing.tFAW) {
    return false;
  }
  return true;
}

bool Controller::column_legal(AccessType type, std::uint64_t cycle) const {
  const auto& t = cfg_.timing;
  if (type == AccessType::kRead) {
    if (cycle + t.tCL < bus_busy_until_) return false;
    if (any_data_yet_ && last_dir_ == AccessType::kWrite &&
        cycle < last_data_end_ + t.tWTR) {
      return false;
    }
  } else {
    if (cycle + t.tWL < bus_busy_until_) return false;
    if (any_data_yet_ && last_dir_ == AccessType::kRead &&
        cycle + t.tWL < last_data_end_ + t.tRTW) {
      return false;
    }
  }
  return true;
}

const std::vector<Candidate>& Controller::build_candidates() {
  std::vector<Candidate>& out = candidates_;
  out.clear();
  out.reserve(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const QueueEntry& e = queue_[i];
    const Bank& bank = banks_[e.coord.bank];
    Candidate c;
    c.queue_index = i;
    c.bank = e.coord.bank;
    c.is_write = e.req.type == AccessType::kWrite;
    if (bank.has_open_row() && bank.open_row() == e.coord.row) {
      c.cmd = e.req.type == AccessType::kRead ? Command::kRead
                                              : Command::kWrite;
      c.row_hit = true;
      c.issuable =
          bank.can_issue(c.cmd, cycle_) && column_legal(e.req.type, cycle_) &&
          !autopre_pending_[e.coord.bank];
    } else if (!bank.has_open_row()) {
      c.cmd = Command::kActivate;
      c.issuable = bank.can_issue(c.cmd, cycle_) &&
                   channel_act_legal(cycle_) &&
                   !autopre_pending_[e.coord.bank];
    } else {
      c.cmd = Command::kPrecharge;
      c.issuable = bank.can_issue(c.cmd, cycle_) &&
                   !autopre_pending_[e.coord.bank];
    }
    out.push_back(c);
  }
  return out;
}

void Controller::issue_column(QueueEntry& e, std::uint64_t cycle) {
  const auto& t = cfg_.timing;
  Bank& bank = banks_[e.coord.bank];
  const bool is_read = e.req.type == AccessType::kRead;
  bank.issue(is_read ? Command::kRead : Command::kWrite, e.coord.row, cycle);

  if (hooks_ != nullptr) {
    const AccessOutcome o = hooks_->on_access(e.coord, e.req.type, cycle);
    if (o == AccessOutcome::kCorrected) {
      e.req.ecc_corrected = true;
    } else if (o == AccessOutcome::kUncorrectable) {
      e.req.data_error = true;
    }
  }

  const std::uint64_t data_start = cycle + (is_read ? t.tCL : t.tWL);
  const std::uint64_t data_end = data_start + cfg_.data_cycles_per_access();
  bus_busy_until_ = data_end;
  last_data_end_ = data_end;
  last_dir_ = e.req.type;
  any_data_yet_ = true;

  log_command(CommandRecord{cycle, is_read ? Command::kRead : Command::kWrite,
                            e.coord.bank, e.coord.row,
                            cfg_.page_policy == PagePolicy::kClosed});

  stats_.data_bus_busy_cycles += cfg_.data_cycles_per_access();
  stats_.bytes_transferred += cfg_.bytes_per_access();
  if (is_read) {
    ++stats_.reads;
  } else {
    ++stats_.writes;
  }

  // ECC decode sits in the controller's return pipeline: it delays the
  // data handed to the client, not the bus occupancy.
  e.req.done_cycle =
      data_end + (cfg_.ecc_enabled && is_read ? cfg_.ecc_latency_cycles : 0);
  EDSIM_TELEMETRY(telemetry_, on_request_issued(e.req, e.coord, cycle));
  EDSIM_TELEMETRY(telemetry_, on_request_data(e.req, data_start, data_end));
  inflight_.push_back(InFlight{e.req});

  last_col_cycle_[e.coord.bank] = cycle;
  if (cfg_.page_policy == PagePolicy::kClosed) {
    autopre_pending_[e.coord.bank] = true;
  }
}

bool Controller::tick_autoprecharge() {
  // Auto-precharge does not occupy the command bus (it is encoded in the
  // column command on real parts); apply it as soon as it becomes legal.
  bool any = false;
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (autopre_pending_[b] && banks_[b].can_issue(Command::kPrecharge, cycle_)) {
      banks_[b].issue(Command::kPrecharge, 0, cycle_);
      ++stats_.precharges;
      autopre_pending_[b] = false;
      any = true;
    }
  }
  return any;
}

bool Controller::tick_refresh() {
  if (!refresh_.urgent(cycle_)) {
    refresh_draining_ = false;
    return false;
  }
  refresh_draining_ = true;
  // Precharge any open bank (one PRE per cycle on the command bus).
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (banks_[b].has_open_row()) {
      if (banks_[b].can_issue(Command::kPrecharge, cycle_)) {
        banks_[b].issue(Command::kPrecharge, 0, cycle_);
        autopre_pending_[b] = false;
        ++stats_.precharges;
        log_command(CommandRecord{cycle_, Command::kPrecharge, b, 0, false});
      }
      return true;  // command slot consumed (or bank not yet ready)
    }
  }
  // All banks idle: issue REF when every bank is past its tRP window.
  for (const Bank& b : banks_) {
    if (!b.can_issue(Command::kRefresh, cycle_)) return true;  // wait
  }
  for (Bank& b : banks_) b.issue(Command::kRefresh, 0, cycle_);
  refresh_.refresh_issued(cycle_);
  if (hooks_ != nullptr) hooks_->on_refresh(cycle_);
  ++stats_.refreshes;
  log_command(CommandRecord{cycle_, Command::kRefresh, 0, 0, false});
  refresh_draining_ = false;
  return true;
}

void Controller::tick_watchdog() {
  if (!cfg_.watchdog_enabled || queue_.empty()) return;
  // queue_ is age-ordered, so the front entry is the starvation candidate.
  QueueEntry& oldest = queue_.front();
  if (cycle_ < oldest.wd_deadline) return;
  if (oldest.wd_retries >= cfg_.watchdog_retries) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "request id=%llu client=%u addr=0x%llx starved %llu cycles "
                  "(%u retries exhausted)",
                  static_cast<unsigned long long>(oldest.req.id),
                  oldest.req.client_id,
                  static_cast<unsigned long long>(oldest.req.addr),
                  static_cast<unsigned long long>(
                      cycle_ - oldest.req.arrival_cycle),
                  oldest.wd_retries);
    throw Error(ErrorKind::kRequestTimeout, cycle_, buf);
  }
  ++oldest.wd_retries;
  oldest.wd_deadline = cycle_ + cfg_.watchdog_cycles;
  ++stats_.watchdog_retries;
}

void Controller::tick() {
  stats_.queue_occupancy.add(static_cast<double>(queue_.size()));
  if (hooks_ != nullptr) hooks_->on_cycle(cycle_);

  // --- power-down management -------------------------------------------------
  if (cfg_.powerdown_enabled) {
    const bool has_work = !queue_.empty() || !inflight_.empty();
    if (powered_down_) {
      // Refresh urgency or new work wakes the device after tXP.
      if (has_work || refresh_.urgent(cycle_)) {
        powered_down_ = false;
        wake_until_ = cycle_ + cfg_.tXP;
      } else {
        ++stats_.powerdown_cycles;
        ++cycle_;
        ++stats_.cycles;
        notify_tick();
        return;
      }
    } else if (!has_work) {
      if (!was_idle_) {
        was_idle_ = true;
        idle_since_ = cycle_;
      }
      // All banks must be precharged before entry; close any open row
      // (this consumes the command slot, like an explicit PRE).
      if (cycle_ - idle_since_ >= cfg_.powerdown_idle_cycles &&
          !refresh_.urgent(cycle_)) {
        bool all_idle = true;
        for (unsigned b = 0; b < cfg_.banks; ++b) {
          if (banks_[b].has_open_row()) {
            all_idle = false;
            if (banks_[b].can_issue(Command::kPrecharge, cycle_)) {
              banks_[b].issue(Command::kPrecharge, 0, cycle_);
              autopre_pending_[b] = false;
              ++stats_.precharges;
              log_command(
                  CommandRecord{cycle_, Command::kPrecharge, b, 0, false});
            }
            break;  // one command per cycle
          }
        }
        if (all_idle) powered_down_ = true;
        ++cycle_;
        ++stats_.cycles;
        if (powered_down_) ++stats_.powerdown_cycles;
        notify_tick();
        return;
      }
    } else {
      was_idle_ = false;
    }
    if (cycle_ < wake_until_) {
      // Exiting power-down: no commands yet.
      ++cycle_;
      ++stats_.cycles;
      notify_tick();
      return;
    }
  }

  // 1. Retire in-flight requests whose data finished.
  if (!inflight_.empty()) {
    auto it = inflight_.begin();
    while (it != inflight_.end()) {
      if (it->req.done_cycle <= cycle_) {
        Request& r = it->req;
        (r.type == AccessType::kRead ? stats_.read_latency
                                     : stats_.write_latency)
            .add(static_cast<double>(r.latency()));
        EDSIM_TELEMETRY(telemetry_, on_request_complete(r, cycle_));
        completed_.push_back(r);
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // 2. Hardware auto-precharge (no command-bus cost).
  tick_autoprecharge();

  // 2b. Watchdog: escalate or fail a starving request.
  tick_watchdog();

  // 3. Refresh has absolute priority once due.
  if (!tick_refresh()) {
    // 4. Normal scheduling: one command this cycle.
    const auto& candidates = build_candidates();
    const std::uint64_t oldest_wait =
        queue_.empty() ? 0 : cycle_ - queue_.front().req.arrival_cycle;
    std::size_t pick;
    if (cfg_.watchdog_enabled && !queue_.empty() &&
        queue_.front().wd_retries > 0) {
      // An escalated request owns the command slot until it completes:
      // candidates are age-ordered, so its candidate is index 0.
      pick = candidates.front().issuable ? 0 : Scheduler::kNone;
    } else {
      pick = scheduler_->pick(candidates, oldest_wait);
    }
    if (pick == Scheduler::kNone &&
        cfg_.page_policy == PagePolicy::kTimeout) {
      // Idle command slot: close any row that has been open and unused
      // past the timeout. Never preempts real work (pick was kNone).
      for (unsigned b = 0; b < cfg_.banks; ++b) {
        if (banks_[b].has_open_row() &&
            cycle_ >= last_col_cycle_[b] + cfg_.page_timeout_cycles &&
            banks_[b].can_issue(Command::kPrecharge, cycle_)) {
          // Only close rows no queued request still wants.
          bool wanted = false;
          for (const QueueEntry& e : queue_) {
            wanted = wanted || (e.coord.bank == b &&
                                e.coord.row == banks_[b].open_row());
          }
          if (wanted) continue;
          banks_[b].issue(Command::kPrecharge, 0, cycle_);
          ++stats_.precharges;
          log_command(CommandRecord{cycle_, Command::kPrecharge, b, 0, false});
          break;  // one command per cycle
        }
      }
    }
    if (pick != Scheduler::kNone) {
      const Candidate& c = candidates[pick];
      QueueEntry& e = queue_[c.queue_index];
      Bank& bank = banks_[e.coord.bank];
      classify(e, bank);
      switch (c.cmd) {
        case Command::kActivate:
          bank.issue(Command::kActivate, e.coord.row, cycle_);
          ++stats_.activations;
          last_act_cycle_ = cycle_;
          any_act_yet_ = true;
          recent_acts_.push_back(cycle_);
          if (recent_acts_.size() > 8) recent_acts_.pop_front();
          log_command(CommandRecord{cycle_, Command::kActivate, e.coord.bank,
                                    e.coord.row, false});
          break;
        case Command::kPrecharge:
          bank.issue(Command::kPrecharge, 0, cycle_);
          ++stats_.precharges;
          log_command(
              CommandRecord{cycle_, Command::kPrecharge, e.coord.bank, 0,
                            false});
          break;
        case Command::kRead:
        case Command::kWrite: {
          issue_column(e, cycle_);
          queue_.erase(queue_.begin() +
                       static_cast<std::ptrdiff_t>(c.queue_index));
          break;
        }
        case Command::kRefresh:
          break;  // unreachable: refresh handled above
      }
    }
  }

  ++cycle_;
  ++stats_.cycles;
  if (hooks_ != nullptr) stats_.reliability = hooks_->counters();
  notify_tick();
}

std::vector<Request> Controller::drain_completed() {
  std::vector<Request> out;
  drain_completed_into(out);
  return out;
}

void Controller::drain_completed_into(std::vector<Request>& out) {
  out.clear();
  out.insert(out.end(), completed_.begin(), completed_.end());
  completed_.clear();
}

namespace {
/// a - b clamped at zero (timing releases saturate at cycle 0).
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}
}  // namespace

std::uint64_t Controller::next_event_cycle() const {
  std::uint64_t ne = kNeverCycle;
  const auto upd = [&](std::uint64_t c) {
    ne = std::min(ne, std::max(c, cycle_));
  };
  const bool has_work = !queue_.empty() || !inflight_.empty();

  if (cfg_.powerdown_enabled) {
    if (powered_down_) {
      // Only new work (caller-driven) or refresh urgency wakes the device.
      if (has_work) return cycle_;
      upd(refresh_.next_urgent_cycle(cycle_));
      return ne;
    }
    if (cycle_ < wake_until_) {
      // Exiting power-down: every tick until tXP elapses is bookkeeping
      // (watchdog and refresh paths are behind the same early return).
      return wake_until_;
    }
    if (!has_work) {
      // Power-down entry fires once the idle streak reaches the threshold;
      // if the streak has not started, the next tick starts it at cycle_.
      upd((was_idle_ ? idle_since_ : cycle_) + cfg_.powerdown_idle_cycles);
    }
  }

  // In-flight data completions.
  for (const InFlight& f : inflight_) upd(f.req.done_cycle);

  // Refresh urgency.
  upd(refresh_.next_urgent_cycle(cycle_));

  // Pending hardware auto-precharges.
  for (unsigned b = 0; b < cfg_.banks; ++b) {
    if (autopre_pending_[b]) upd(banks_[b].earliest(Command::kPrecharge));
  }

  // Watchdog deadline of the oldest queued request.
  if (cfg_.watchdog_enabled && !queue_.empty()) {
    upd(queue_.front().wd_deadline);
  }

  // Page-timeout closes of idle open rows. Rows a queued request still
  // wants are never closed by this policy, and the queue cannot change
  // during a skip, so they contribute no event.
  if (cfg_.page_policy == PagePolicy::kTimeout) {
    for (unsigned b = 0; b < cfg_.banks; ++b) {
      if (!banks_[b].has_open_row()) continue;
      bool wanted = false;
      for (const QueueEntry& e : queue_) {
        wanted = wanted ||
                 (e.coord.bank == b && e.coord.row == banks_[b].open_row());
      }
      if (wanted) continue;
      upd(std::max(last_col_cycle_[b] + cfg_.page_timeout_cycles,
                   banks_[b].earliest(Command::kPrecharge)));
    }
  }

  // Earliest cycle each queued request's next command becomes legal. Bank
  // and bus state are frozen during a skip (no commands issue), so these
  // releases stay valid until the skip ends. The bound is conservative:
  // the scheduler may still decline (e.g. FCFS head-of-line blocking),
  // which only shortens the skip, never corrupts it.
  const auto& t = cfg_.timing;
  for (const QueueEntry& e : queue_) {
    if (autopre_pending_[e.coord.bank]) continue;  // gated by autopre above
    const Bank& bank = banks_[e.coord.bank];
    if (bank.has_open_row() && bank.open_row() == e.coord.row) {
      std::uint64_t rel = bank.earliest(
          e.req.type == AccessType::kRead ? Command::kRead : Command::kWrite);
      if (e.req.type == AccessType::kRead) {
        rel = std::max(rel, sat_sub(bus_busy_until_, t.tCL));
        if (any_data_yet_ && last_dir_ == AccessType::kWrite) {
          rel = std::max(rel, last_data_end_ + t.tWTR);
        }
      } else {
        rel = std::max(rel, sat_sub(bus_busy_until_, t.tWL));
        if (any_data_yet_ && last_dir_ == AccessType::kRead) {
          rel = std::max(rel, sat_sub(last_data_end_ + t.tRTW, t.tWL));
        }
      }
      upd(rel);
    } else if (!bank.has_open_row()) {
      std::uint64_t rel = bank.earliest(Command::kActivate);
      if (any_act_yet_) rel = std::max(rel, last_act_cycle_ + t.tRRD);
      if (t.tFAW != 0 && recent_acts_.size() >= 4) {
        rel = std::max(rel, recent_acts_[recent_acts_.size() - 4] + t.tFAW);
      }
      upd(rel);
    } else {
      upd(bank.earliest(Command::kPrecharge));
    }
  }

  return ne;
}

void Controller::advance_idle(std::uint64_t count) {
  if (count == 0) return;
  stats_.queue_occupancy.add_repeated(static_cast<double>(queue_.size()),
                                      count);
  if (hooks_ != nullptr) hooks_->on_idle_cycles(cycle_, cycle_ + count);

  // Replicate the per-tick power-down bookkeeping for a quiet stretch.
  // The regime (powered down / waking / normal) is constant across it:
  // every transition is an event, so skips never straddle one. The
  // reliability-counter mirror matches tick()'s early returns — powered-
  // down and waking ticks leave stats_.reliability stale, full ticks
  // refresh it.
  bool full_path = true;
  if (cfg_.powerdown_enabled) {
    const bool has_work = !queue_.empty() || !inflight_.empty();
    if (powered_down_) {
      stats_.powerdown_cycles += count;
      full_path = false;
    } else {
      if (!has_work) {
        if (!was_idle_) {
          was_idle_ = true;
          idle_since_ = cycle_;
        }
      } else {
        was_idle_ = false;
      }
      if (cycle_ < wake_until_) full_path = false;
    }
  }

  const std::uint64_t from = cycle_;
  cycle_ += count;
  stats_.cycles += count;
  if (full_path && hooks_ != nullptr) stats_.reliability = hooks_->counters();
  EDSIM_TELEMETRY(telemetry_, on_bulk_advance(from, tick_sample(), stats_));
}

void Controller::tick_until(std::uint64_t target_cycle) {
  while (cycle_ < target_cycle) {
    // One real tick settles same-cycle transitions (idle-streak starts,
    // scheduler hysteresis, lazy refresh batching) before any skip.
    tick();
    if (cycle_ >= target_cycle) break;
    const std::uint64_t ne = next_event_cycle();
    if (ne > cycle_) advance_idle(std::min(ne, target_cycle) - cycle_);
  }
}

void Controller::drain(std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  while (!idle() && cycle_ < limit) {
    tick();
    if (idle() || cycle_ >= limit) break;
    const std::uint64_t ne = next_event_cycle();
    if (ne > cycle_) advance_idle(std::min(ne, limit) - cycle_);
  }
  require(idle(), "Controller::drain: did not converge (deadlock?)");
}

}  // namespace edsim::dram
