#pragma once

#include <cstdint>

#include "dram/address_map.hpp"
#include "dram/command_log.hpp"
#include "dram/request.hpp"

namespace edsim::dram {

struct ControllerStats;

/// Per-tick channel state handed to telemetry probes alongside the
/// statistics snapshot. Everything in here is frozen during an
/// event-driven skip (no commands issue, the queue cannot change), which
/// is what lets the interval reporter synthesize boundary samples across
/// skipped stretches bit-identically to per-cycle ticking.
struct TickSample {
  std::uint64_t cycle = 0;       ///< cycle just completed (post-increment)
  std::uint32_t queue_depth = 0; ///< requests parked in the queue
  std::uint32_t open_banks = 0;  ///< banks currently holding an open row
};

/// Observability callbacks the controller drives from its datapath —
/// the probe points of the `telemetry/` subsystem (request tracers,
/// interval reporters, metric exporters). All hooks are read-only
/// observers: attaching one never changes simulation behaviour.
///
/// Defaults are no-ops so implementations override only what they need.
/// Like ReliabilityHooks, the indirection keeps `dram/` free of a
/// dependency on the telemetry library.
class TelemetryHooks {
 public:
  virtual ~TelemetryHooks() = default;

  /// Request accepted into the queue (id and arrival_cycle assigned).
  virtual void on_request_enqueued(const Request& /*req*/,
                                   const Coordinates& /*coord*/,
                                   std::uint64_t /*cycle*/) {}

  /// Column command issued for the request; done_cycle is already set.
  virtual void on_request_issued(const Request& /*req*/,
                                 const Coordinates& /*coord*/,
                                 std::uint64_t /*cycle*/) {}

  /// Data-bus window the request occupies: [data_start, data_end).
  virtual void on_request_data(const Request& /*req*/,
                               std::uint64_t /*data_start*/,
                               std::uint64_t /*data_end*/) {}

  /// Request retired: last beat (plus ECC decode) done, handed to drain.
  virtual void on_request_complete(const Request& /*req*/,
                                   std::uint64_t /*cycle*/) {}

  /// One command driven on the command bus (same records the CommandLog
  /// captures, delivered live).
  virtual void on_command(const CommandRecord& /*rec*/) {}

  /// One tick finished; `stats` is the post-tick snapshot.
  virtual void on_cycle_advance(const TickSample& /*sample*/,
                                const ControllerStats& /*stats*/) {}

  /// Bulk credit of the quiet stretch [from, sample.cycle): the
  /// controller skipped these ticks as eventless. Only `cycles` and
  /// `powerdown_cycles` moved (linearly) across the stretch; every other
  /// statistic is frozen at its value from `from`.
  virtual void on_bulk_advance(std::uint64_t /*from*/,
                               const TickSample& /*sample*/,
                               const ControllerStats& /*stats*/) {}
};

/// Probe gate: compiled in unconditionally, a single well-predicted null
/// check when no telemetry is attached — the ≤2% disabled-overhead budget
/// the bench pair (BM_TelemetryDetached/Attached) polices.
#define EDSIM_TELEMETRY(hooks, call)        \
  do {                                      \
    if ((hooks) != nullptr) (hooks)->call;  \
  } while (0)

}  // namespace edsim::dram
