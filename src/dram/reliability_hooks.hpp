#pragma once

#include <cstdint>

#include "common/snapshot.hpp"
#include "dram/address_map.hpp"
#include "dram/request.hpp"

namespace edsim::dram {

/// Result of pushing one column access through the reliability layer.
enum class AccessOutcome : std::uint8_t {
  kClean,          ///< no stored fault touched the access window
  kCorrected,      ///< SEC repaired a single-bit error (or write re-encoded)
  kUncorrectable,  ///< DED fired (or, without ECC, silent corruption)
};

/// Error-accounting counters for one channel. The invariant the soak test
/// checks is `injected == corrected + uncorrected + remapped` — every
/// injected fault is disposed exactly once:
///   corrected   — removed by SEC (demand read, patrol scrub, or a write
///                 re-encoding the word);
///   uncorrected — present in a word when DED fired, or read without ECC;
///   remapped    — still live in a row/bank when it was remapped/retired
///                 (the spare resource starts clean, carrying them away).
/// Faults not yet touched by any access are *latent*; `finalize()` on the
/// manager sweeps them so the balance closes exactly at report time.
struct ReliabilityCounters {
  std::uint64_t injected = 0;     ///< fault-bits materialized in the array
  std::uint64_t corrected = 0;    ///< fault-bits disposed by correction
  std::uint64_t uncorrected = 0;  ///< fault-bits disposed as data loss
  std::uint64_t remapped = 0;     ///< fault-bits disposed by remap/retire

  std::uint64_t demand_corrections = 0;   ///< SEC events on demand reads
  std::uint64_t scrub_corrections = 0;    ///< SEC events during patrol scrub
  std::uint64_t write_repairs = 0;        ///< fault-bits cleared by re-encode
  std::uint64_t uncorrectable_events = 0; ///< DED / no-ECC corruption events
  std::uint64_t rows_remapped = 0;        ///< rows moved onto spare rows
  std::uint64_t banks_retired = 0;        ///< banks taken out of service
  std::uint64_t scrubbed_rows = 0;        ///< rows swept by the patrol scrubber

  // Self-managed maintenance (retention-bin sweeps + RowHammer defense).
  std::uint64_t maint_ops = 0;       ///< idle bank slots claimed
  std::uint64_t maint_rows = 0;      ///< rows refreshed by bin sweeps
  std::uint64_t neighbor_rows = 0;   ///< victim rows refreshed by the defense
  std::uint64_t disturb_flips = 0;   ///< disturbance flip events (attack model)

  bool balanced() const {
    return injected == corrected + uncorrected + remapped;
  }

  void save(SnapshotWriter& w) const {
    w.u64(injected);
    w.u64(corrected);
    w.u64(uncorrected);
    w.u64(remapped);
    w.u64(demand_corrections);
    w.u64(scrub_corrections);
    w.u64(write_repairs);
    w.u64(uncorrectable_events);
    w.u64(rows_remapped);
    w.u64(banks_retired);
    w.u64(scrubbed_rows);
    w.u64(maint_ops);
    w.u64(maint_rows);
    w.u64(neighbor_rows);
    w.u64(disturb_flips);
  }
  void load(SnapshotReader& r) {
    injected = r.u64();
    corrected = r.u64();
    uncorrected = r.u64();
    remapped = r.u64();
    demand_corrections = r.u64();
    scrub_corrections = r.u64();
    write_repairs = r.u64();
    uncorrectable_events = r.u64();
    rows_remapped = r.u64();
    banks_retired = r.u64();
    scrubbed_rows = r.u64();
    maint_ops = r.u64();
    maint_rows = r.u64();
    neighbor_rows = r.u64();
    disturb_flips = r.u64();
  }
};

/// Runtime-reliability callbacks the controller drives from its datapath.
/// Implemented by reliability::ReliabilityManager; the indirection keeps
/// `dram/` free of a dependency on the reliability library.
class ReliabilityHooks {
 public:
  virtual ~ReliabilityHooks() = default;

  /// Called once per controller tick (fault-injection sampling point).
  virtual void on_cycle(std::uint64_t cycle) = 0;

  /// Fast-forward bulk credit for the cycle range [first, last): the
  /// controller skipped these ticks as eventless, so the hooks must apply
  /// whatever on_cycle would have done for each of them — bit-identically.
  /// The default replays on_cycle per cycle; implementations with lazy
  /// clocks (e.g. exponential transient arrivals) override with an O(events)
  /// version.
  virtual void on_idle_cycles(std::uint64_t first, std::uint64_t last) {
    for (std::uint64_t c = first; c < last; ++c) on_cycle(c);
  }

  /// A column command touched `c`'s burst window. Returns what the ECC
  /// path observed; the controller tags the request accordingly.
  virtual AccessOutcome on_access(const Coordinates& c, AccessType type,
                                  std::uint64_t cycle) = 0;

  /// A REF command was issued (patrol-scrub piggyback point).
  virtual void on_refresh(std::uint64_t cycle) = 0;

  /// An ACT opened (bank, row) — the RowHammer disturbance accounting
  /// point. Default is a no-op so non-maintenance hooks stay unchanged.
  virtual void on_activate(unsigned /*bank*/, unsigned /*row*/,
                           std::uint64_t /*cycle*/) {}

  // --- self-managed maintenance (SMD-style idle-slot arbitration) ----------
  // When self_managed() is true the controller suppresses its tREFI REF
  // sweep and instead offers precharged, unlocked banks to the hooks:
  // maintenance_claim returns a lock duration (0 declines) and the
  // controller fences the bank for that many cycles. pending/urgent and
  // next_maintenance_cycle are pure queries so the fast-forward event
  // bound can consult them without perturbing state.
  virtual bool self_managed() const { return false; }
  /// Maintenance work is queued for `bank` (an idle slot would be used).
  virtual bool maintenance_pending(unsigned /*bank*/,
                                   std::uint64_t /*cycle*/) const {
    return false;
  }
  /// Maintenance for `bank` has passed its deadline (may preempt traffic).
  virtual bool maintenance_urgent(unsigned /*bank*/,
                                  std::uint64_t /*cycle*/) const {
    return false;
  }
  /// Offer `bank` (idle, unlocked, past tRP) to the hooks at `cycle`.
  /// Returns the lock duration in cycles, 0 to decline; row restores,
  /// events and counters happen inside.
  virtual unsigned maintenance_claim(unsigned /*bank*/,
                                     std::uint64_t /*cycle*/) {
    return 0;
  }
  /// Earliest cycle >= `now` at which the maintenance schedule can change
  /// on its own (next bin due or deadline); kNeverCycle when none.
  virtual std::uint64_t next_maintenance_cycle(std::uint64_t /*now*/) const {
    return kNeverCycle;
  }

  /// True when graceful degradation has retired this bank; the controller
  /// steers new requests to a healthy bank.
  virtual bool bank_retired(unsigned bank) const = 0;

  virtual const ReliabilityCounters& counters() const = 0;
};

}  // namespace edsim::dram
