#include "dram/address_map.hpp"

#include "common/error.hpp"

namespace edsim::dram {

AddressMapper::AddressMapper(const DramConfig& cfg)
    : scheme_(cfg.mapping),
      banks_(cfg.banks),
      rows_(cfg.rows_per_bank),
      cols_(cfg.columns_per_row()),
      beat_bytes_(cfg.bytes_per_beat()),
      burst_beats_(cfg.timing.burst_length),
      capacity_bytes_(cfg.capacity().byte_count()) {
  cfg.validate();
}

Coordinates AddressMapper::decode(std::uint64_t byte_addr) const {
  const std::uint64_t beat = (byte_addr % capacity_bytes_) / beat_bytes_;
  Coordinates c;
  switch (scheme_) {
    case AddressMapping::kRowBankCol: {
      // row | bank | col : a linear stream walks a page, then hops banks.
      c.column = static_cast<unsigned>(beat % cols_);
      c.bank = static_cast<unsigned>((beat / cols_) % banks_);
      c.row = static_cast<unsigned>(beat / (static_cast<std::uint64_t>(cols_) * banks_));
      break;
    }
    case AddressMapping::kPermutedBank: {
      // As kRowBankCol, but the bank is XOR-folded with the low row bits
      // (Zhang et al.-style permutation). Strides that land every access
      // in one bank under the plain scheme spread over all banks; the
      // mapping stays a bijection because XOR by a row-derived constant
      // permutes banks within each row.
      c.column = static_cast<unsigned>(beat % cols_);
      const unsigned raw_bank =
          static_cast<unsigned>((beat / cols_) % banks_);
      c.row = static_cast<unsigned>(
          beat / (static_cast<std::uint64_t>(cols_) * banks_));
      c.bank = (raw_bank ^ c.row) & (banks_ - 1);
      break;
    }
    case AddressMapping::kBankRowCol: {
      // bank | row | col : a stream exhausts a whole bank before moving on.
      c.column = static_cast<unsigned>(beat % cols_);
      c.row = static_cast<unsigned>((beat / cols_) % rows_);
      c.bank = static_cast<unsigned>(beat / (static_cast<std::uint64_t>(cols_) * rows_));
      break;
    }
    case AddressMapping::kRowColBank: {
      // row | col | bank (bank bits just above the burst offset):
      // consecutive bursts alternate banks.
      const std::uint64_t burst = beat / burst_beats_;
      const unsigned within = static_cast<unsigned>(beat % burst_beats_);
      c.bank = static_cast<unsigned>(burst % banks_);
      const std::uint64_t col_burst = (burst / banks_) % (cols_ / burst_beats_);
      c.column = static_cast<unsigned>(col_burst) * burst_beats_ + within;
      c.row = static_cast<unsigned>(burst / (static_cast<std::uint64_t>(banks_) *
                                             (cols_ / burst_beats_)));
      break;
    }
  }
  return c;
}

std::uint64_t AddressMapper::encode(const Coordinates& c) const {
  std::uint64_t beat = 0;
  switch (scheme_) {
    case AddressMapping::kRowBankCol:
      beat = (static_cast<std::uint64_t>(c.row) * banks_ + c.bank) * cols_ +
             c.column;
      break;
    case AddressMapping::kPermutedBank: {
      const unsigned raw_bank = (c.bank ^ c.row) & (banks_ - 1);
      beat = (static_cast<std::uint64_t>(c.row) * banks_ + raw_bank) *
                 cols_ +
             c.column;
      break;
    }
    case AddressMapping::kBankRowCol:
      beat = (static_cast<std::uint64_t>(c.bank) * rows_ + c.row) * cols_ +
             c.column;
      break;
    case AddressMapping::kRowColBank: {
      const unsigned bursts_per_row = cols_ / burst_beats_;
      const std::uint64_t burst =
          (static_cast<std::uint64_t>(c.row) * bursts_per_row +
           c.column / burst_beats_) *
              banks_ +
          c.bank;
      beat = burst * burst_beats_ + c.column % burst_beats_;
      break;
    }
  }
  return beat * beat_bytes_;
}

}  // namespace edsim::dram
