#include "dram/presets.hpp"

#include "common/error.hpp"

namespace edsim::dram::presets {

DramConfig sdram_pc100_64mbit() {
  DramConfig c;
  c.banks = 4;
  c.rows_per_bank = 4096;
  c.page_bytes = 512;  // 256 columns x 16 bit
  c.interface_bits = 16;
  c.timing = timing_pc100_sdram();
  c.clock = Frequency{100.0};
  c.validate();
  require(c.capacity() == Capacity::mbit(64), "preset: expected 64 Mbit");
  return c;
}

DramConfig sdram_pc100_4mbit() {
  DramConfig c;
  c.banks = 2;
  c.rows_per_bank = 1024;
  c.page_bytes = 256;  // 128 columns x 16 bit
  c.interface_bits = 16;
  c.timing = timing_pc100_sdram();
  c.clock = Frequency{100.0};
  c.validate();
  require(c.capacity() == Capacity::mbit(4), "preset: expected 4 Mbit");
  return c;
}

DramConfig edram_module(unsigned capacity_mbit, unsigned interface_bits,
                        unsigned banks, unsigned page_bytes) {
  require(interface_bits >= 16 && interface_bits <= 512,
          "edram preset: interface width must be within 16..512 (paper §5)");
  DramConfig c;
  c.banks = banks;
  c.page_bytes = page_bytes;
  c.interface_bits = interface_bits;
  c.timing = timing_edram_7ns();
  c.clock = Frequency{143.0};

  const std::uint64_t total_bytes =
      Capacity::mbit(capacity_mbit).byte_count();
  const std::uint64_t per_bank = total_bytes / banks;
  require(per_bank % page_bytes == 0,
          "edram preset: capacity not divisible into pages");
  const std::uint64_t rows = per_bank / page_bytes;
  require(rows > 0 && (rows & (rows - 1)) == 0,
          "edram preset: rows per bank must be a power of two; adjust banks "
          "or page length");
  c.rows_per_bank = static_cast<unsigned>(rows);
  c.validate();
  return c;
}

DramConfig edram_256bit_16mbit() {
  return edram_module(/*capacity_mbit=*/16, /*interface_bits=*/256,
                      /*banks=*/4, /*page_bytes=*/2048);
}

}  // namespace edsim::dram::presets
