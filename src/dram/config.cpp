#include "dram/config.hpp"

#include <bit>
#include <cstdio>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace edsim::dram {

namespace {
bool is_pow2(unsigned v) { return v != 0 && std::has_single_bit(v); }
}  // namespace

void DramConfig::validate() const {
  timing.validate();
  require(is_pow2(banks), "dram: banks must be a power of two");
  require(banks <= 64, "dram: banks > 64 is not a realistic organization");
  require(is_pow2(rows_per_bank), "dram: rows_per_bank must be a power of two");
  require(is_pow2(page_bytes), "dram: page_bytes must be a power of two");
  require(interface_bits >= 8 && interface_bits <= 1024,
          "dram: interface width out of range [8, 1024]");
  require(is_pow2(interface_bits), "dram: interface width must be power of two");
  require(interface_bits % 8 == 0, "dram: interface width must be whole bytes");
  require(page_bytes >= bytes_per_beat(),
          "dram: page shorter than one data beat");
  require(page_bytes % bytes_per_beat() == 0,
          "dram: page length must be a multiple of the beat width");
  require(bytes_per_access() <= page_bytes,
          "dram: one burst must fit within a page");
  require(clock.mhz > 0.0, "dram: clock must be positive");
  require(queue_depth >= 1, "dram: queue_depth must be >= 1");
  require(transfers_per_clock == 1 || transfers_per_clock == 2 ||
              transfers_per_clock == 4,
          "dram: transfers_per_clock must be 1 (SDR), 2 (DDR) or 4");
  require(refresh_burst >= 1 && refresh_burst <= 64,
          "dram: refresh_burst must be in 1..64");
  if (page_policy == PagePolicy::kTimeout) {
    require(page_timeout_cycles >= 1,
            "dram: page_timeout_cycles must be >= 1");
  }
  if (powerdown_enabled) {
    require(powerdown_idle_cycles >= 1,
            "dram: powerdown_idle_cycles must be >= 1");
    require(tXP >= 1, "dram: tXP must be >= 1");
  }
  if (ecc_enabled) {
    require(ecc_word_bits >= 1 && ecc_word_bits <= 64,
            "dram: ecc_word_bits must be 1..64");
    require(static_cast<std::uint64_t>(page_bytes) * 8 % ecc_word_bits == 0,
            "dram: page must hold a whole number of ECC words");
  }
  if (watchdog_enabled) {
    require(watchdog_cycles >= 1, "dram: watchdog_cycles must be >= 1");
  }
  if (scheduler == SchedulerKind::kTdm) {
    require(tdm_slot_cycles >= 1, "dram: tdm_slot_cycles must be >= 1");
    require(tdm_clients >= 1, "dram: tdm_clients must be >= 1");
  }
}

std::uint64_t DramConfig::content_hash() const {
  ContentHasher h;
  h.mix(banks)
      .mix(rows_per_bank)
      .mix(page_bytes)
      .mix(interface_bits)
      .mix(transfers_per_clock)
      .mix(timing.tRCD)
      .mix(timing.tRP)
      .mix(timing.tCL)
      .mix(timing.tWL)
      .mix(timing.tRAS)
      .mix(timing.tRC)
      .mix(timing.tRRD)
      .mix(timing.tFAW)
      .mix(timing.tCCD)
      .mix(timing.tWR)
      .mix(timing.tWTR)
      .mix(timing.tRTW)
      .mix(timing.tRFC)
      .mix(timing.tREFI)
      .mix(timing.burst_length)
      .mix(clock.mhz)
      .mix(static_cast<unsigned>(page_policy))
      .mix(page_timeout_cycles)
      .mix(static_cast<unsigned>(scheduler))
      .mix(static_cast<unsigned>(mapping))
      .mix(queue_depth)
      .mix(tdm_slot_cycles)
      .mix(tdm_clients)
      .mix(refresh_enabled)
      .mix(refresh_burst)
      .mix(powerdown_enabled)
      .mix(powerdown_idle_cycles)
      .mix(tXP)
      .mix(ecc_enabled)
      .mix(ecc_word_bits)
      .mix(ecc_latency_cycles)
      .mix(watchdog_enabled)
      .mix(watchdog_cycles)
      .mix(watchdog_retries);
  return h.digest();
}

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "fcfs";
    case SchedulerKind::kFcfsPerBank: return "fcfs-per-bank";
    case SchedulerKind::kFrFcfs: return "fr-fcfs";
    case SchedulerKind::kReadFirst: return "read-first";
    case SchedulerKind::kTdm: return "tdm";
  }
  return "?";
}

const char* to_string(AddressMapping mapping) {
  switch (mapping) {
    case AddressMapping::kRowBankCol: return "row:bank:col";
    case AddressMapping::kBankRowCol: return "bank:row:col";
    case AddressMapping::kRowColBank: return "row:col:bank";
    case AddressMapping::kPermutedBank: return "permuted-bank";
  }
  return "?";
}

std::string DramConfig::describe() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "%s, %u banks x %u rows x %uB pages, %u-bit @ %.0f MHz, "
                "peak %.2f GB/s, %s/%s",
                to_string(capacity()).c_str(), banks, rows_per_bank,
                page_bytes, interface_bits, clock.mhz,
                peak_bandwidth().as_gbyte_per_s(), to_string(scheduler),
                to_string(mapping));
  return buf;
}

}  // namespace edsim::dram
