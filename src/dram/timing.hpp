#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace edsim::dram {

/// DRAM core timing parameters, in controller clock cycles.
///
/// The set mirrors a late-90s SDRAM datasheet (the devices the paper
/// compares against) and is equally valid for the embedded macro — the
/// storage core is the same technology; what changes between discrete and
/// embedded parts is interface width, clock and wire electricals.
struct TimingParams {
  unsigned tRCD = 3;  ///< ACT -> column command, same bank
  unsigned tRP = 3;   ///< PRE -> ACT, same bank
  unsigned tCL = 3;   ///< RD -> first data beat (CAS latency)
  unsigned tWL = 1;   ///< WR -> first data beat (write latency)
  unsigned tRAS = 7;  ///< ACT -> PRE, same bank (minimum row-open time)
  unsigned tRC = 10;  ///< ACT -> ACT, same bank
  unsigned tRRD = 2;  ///< ACT -> ACT, different banks
  unsigned tFAW = 0;  ///< rolling window for 4 ACTs (0 = unconstrained)
  unsigned tCCD = 1;  ///< column command -> column command
  unsigned tWR = 3;   ///< end of write data -> PRE, same bank
  unsigned tWTR = 2;  ///< end of write data -> RD (any bank, bus turnaround)
  unsigned tRTW = 2;  ///< extra gap when switching read -> write on the bus
  unsigned tRFC = 9;  ///< refresh command duration (all banks held)
  unsigned tREFI = 1560;  ///< mean interval between refresh commands
  unsigned burst_length = 4;  ///< data beats per column command

  /// Throws ConfigError if the parameters are mutually inconsistent.
  void validate() const;

  /// Latency in cycles from ACT on an idle bank to last data beat of a read.
  unsigned row_miss_read_latency() const {
    return tRCD + tCL + burst_length;
  }
  /// Latency in cycles from RD on an open row to last data beat.
  unsigned row_hit_read_latency() const { return tCL + burst_length; }

  std::string describe() const;
};

/// Named timing presets. Values are representative of the era's parts
/// (PC100 SDRAM; a 7 ns embedded macro per the paper's §5); experiments
/// sweep around them.
TimingParams timing_pc100_sdram();
TimingParams timing_edram_7ns();

}  // namespace edsim::dram
