#pragma once

#include <algorithm>
#include <cstdint>

#include "dram/request.hpp"
#include "dram/timing.hpp"

namespace edsim {
class SnapshotReader;
class SnapshotWriter;
}  // namespace edsim

namespace edsim::dram {

/// One DRAM bank: row-buffer state machine plus the per-bank timing
/// windows. The controller asks `can_issue` before driving `issue`.
class Bank {
 public:
  enum class State : std::uint8_t { kIdle, kActive };

  explicit Bank(const TimingParams& t) : t_(&t) {}

  State state() const { return state_; }
  bool has_open_row() const { return state_ == State::kActive; }
  unsigned open_row() const { return open_row_; }

  /// Is `cmd` legal on this bank at `cycle` given per-bank constraints?
  /// (Cross-bank constraints — tRRD, tFAW, data-bus — live in the channel.)
  bool can_issue(Command cmd, std::uint64_t cycle) const;

  /// Apply `cmd` at `cycle`. Caller must have checked can_issue.
  /// For kActivate, `row` selects the row to open.
  void issue(Command cmd, unsigned row, std::uint64_t cycle);

  /// Cycle at which the earliest future issue of `cmd` becomes legal.
  std::uint64_t earliest(Command cmd) const;

  /// Self-managed maintenance lock: the device works on this bank until
  /// `cycle`; no command may start before then. Raises every release
  /// window without ever regressing an earlier constraint.
  void block_until(std::uint64_t cycle) {
    next_act_ = std::max(next_act_, cycle);
    next_pre_ = std::max(next_pre_, cycle);
    next_col_ = std::max(next_col_, cycle);
  }

  // --- per-bank statistics ------------------------------------------------
  std::uint64_t activations() const { return acts_; }
  std::uint64_t precharges() const { return pres_; }

  /// Persist / restore the dynamic state (row buffer + timing windows);
  /// the timing table stays bound to the owning controller's config.
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

 private:
  const TimingParams* t_;
  State state_ = State::kIdle;
  unsigned open_row_ = 0;

  // Earliest-legal-cycle bookkeeping.
  std::uint64_t next_act_ = 0;
  std::uint64_t next_pre_ = 0;
  std::uint64_t next_col_ = 0;  // RD or WR

  std::uint64_t acts_ = 0;
  std::uint64_t pres_ = 0;
};

}  // namespace edsim::dram
