#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "dram/timing.hpp"

namespace edsim::dram {

/// What happens to a row after a column access completes.
enum class PagePolicy {
  kOpen,     ///< leave the row open (exploits the row-as-cache effect, §4)
  kClosed,   ///< auto-precharge after every access
  kTimeout,  ///< leave open, close after `page_timeout_cycles` of idleness
             ///< (adaptive: hit-friendly under locality, miss-friendly
             ///< under churn)
};

/// Request scheduling discipline (§4: access schemes are a key free
/// parameter of the embedded design space).
enum class SchedulerKind {
  kFcfs,         ///< strict in-order service: head-of-line blocks everything
  kFcfsPerBank,  ///< in-order per bank, banks proceed independently
  kFrFcfs,       ///< first-ready FCFS: row hits first, then oldest
  kReadFirst,    ///< FR-FCFS with read priority and write-drain bursts
  kTdm,          ///< real-time TDM: fixed client time slots, starvation-free
};

/// Human-readable policy / mapping names (fuzz reproducer lines, tables).
const char* to_string(SchedulerKind kind);

/// How a flat byte address is split into (bank, row, column).
enum class AddressMapping {
  kRowBankCol,   ///< col LSB, then bank: streams interleave across banks
  kBankRowCol,   ///< bank MSB: a stream stays in one bank across rows
  kRowColBank,   ///< bank bits right above the burst offset: fine interleave
  kPermutedBank, ///< row:bank:col with bank XOR-hashed by low row bits —
                 ///< breaks power-of-two stride pathologies
};

const char* to_string(AddressMapping mapping);

/// Full description of one DRAM channel (device or embedded macro).
///
/// The organization parameters — number of banks, page length, interface
/// width — are exactly the "free parameters" the paper says an eDRAM
/// designer gains over commodity parts (§3).
struct DramConfig {
  // --- geometry -----------------------------------------------------------
  unsigned banks = 4;
  unsigned rows_per_bank = 4096;
  unsigned page_bytes = 1024;      ///< row (page) length in bytes
  unsigned interface_bits = 16;    ///< data bus width
  unsigned transfers_per_clock = 1;  ///< 1 = SDR, 2 = DDR/2n-prefetch
  // --- behaviour ----------------------------------------------------------
  TimingParams timing{};
  Frequency clock{100.0};
  PagePolicy page_policy = PagePolicy::kOpen;
  unsigned page_timeout_cycles = 48;  ///< kTimeout: idle time before close
  SchedulerKind scheduler = SchedulerKind::kFrFcfs;
  AddressMapping mapping = AddressMapping::kRowBankCol;
  unsigned queue_depth = 32;
  // --- TDM arbitration (kTdm only) -----------------------------------------
  unsigned tdm_slot_cycles = 64;  ///< length of one client time slot
  unsigned tdm_clients = 4;       ///< slots per rotation; owner = id % slots
  bool refresh_enabled = true;
  unsigned refresh_burst = 1;  ///< REFs issued back to back (1 = distributed)
  // --- power management (§2: portables adopt eDRAM first) ------------------
  bool powerdown_enabled = false;  ///< enter power-down when idle
  unsigned powerdown_idle_cycles = 32;  ///< idle streak before entry
  unsigned tXP = 3;  ///< power-down exit to first command
  // --- reliability (runtime ECC datapath) ----------------------------------
  bool ecc_enabled = false;        ///< SEC-DED on the column datapath
  unsigned ecc_word_bits = 64;     ///< data bits per ECC word ((72,64) code)
  unsigned ecc_latency_cycles = 1; ///< decode pipeline added to read latency
  // --- watchdog (starvation detection) -------------------------------------
  bool watchdog_enabled = false;   ///< police queued-request age
  unsigned watchdog_cycles = 100'000;  ///< age budget before escalation
  unsigned watchdog_retries = 3;   ///< priority-boost retries before error

  void validate() const;

  /// Content hash over every field that can influence simulation
  /// behaviour. Two configs hash equal iff a simulation driven by them is
  /// cycle-for-cycle identical; keys the evaluator's checkpoint cache.
  std::uint64_t content_hash() const;

  // --- derived quantities --------------------------------------------------
  unsigned bytes_per_beat() const { return interface_bits / 8; }
  unsigned bytes_per_access() const {
    return bytes_per_beat() * timing.burst_length;
  }
  unsigned columns_per_row() const { return page_bytes / bytes_per_beat(); }
  /// Clock cycles the data bus is occupied by one burst.
  unsigned data_cycles_per_access() const {
    return (timing.burst_length + transfers_per_clock - 1) /
           transfers_per_clock;
  }
  Capacity capacity() const {
    return Capacity::bytes(static_cast<std::uint64_t>(banks) * rows_per_bank *
                           page_bytes);
  }
  Bandwidth peak_bandwidth() const {
    return edsim::peak_bandwidth(interface_bits, clock, transfers_per_clock);
  }
  std::string describe() const;
};

}  // namespace edsim::dram
