#pragma once

#include <string>
#include <vector>

#include "dram/command_log.hpp"
#include "dram/config.hpp"

namespace edsim::dram {

/// A timing-protocol violation found in a command trace.
struct Violation {
  std::uint64_t cycle = 0;
  std::string rule;  ///< e.g. "tRCD", "tRRD", "ACT to active bank"

  std::string describe() const;
};

/// Replays a captured command trace against the datasheet rules and
/// reports every violation. This is an *independent* re-implementation of
/// the constraints the controller is supposed to honour — the pair forms
/// a checker/doer redundancy so scheduler bugs cannot hide (the moral
/// equivalent of the §6 expected-value comparison, applied to ourselves).
class ProtocolChecker {
 public:
  explicit ProtocolChecker(const DramConfig& cfg);

  /// Verify a whole trace; returns all violations (empty = clean).
  std::vector<Violation> verify(const CommandLog& log) const;

 private:
  DramConfig cfg_;
};

}  // namespace edsim::dram
