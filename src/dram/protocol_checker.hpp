#pragma once

#include <string>
#include <vector>

#include "dram/command_log.hpp"
#include "dram/config.hpp"

namespace edsim::dram {

/// A timing-protocol violation found in a command trace.
struct Violation {
  std::uint64_t cycle = 0;
  std::string rule;  ///< e.g. "tRCD", "tRRD", "ACT to active bank"

  std::string describe() const;
};

/// What the checker does when it finds a violation. Fault-injection and
/// soak runs use kCount so one protocol upset is logged instead of
/// aborting the whole simulation; strict test harnesses use kThrow.
enum class ViolationPolicy : std::uint8_t {
  kCount,  ///< collect and return every violation (the default)
  kThrow,  ///< throw a structured edsim::Error at the first violation
};

/// Replays a captured command trace against the datasheet rules and
/// reports every violation. This is an *independent* re-implementation of
/// the constraints the controller is supposed to honour — the pair forms
/// a checker/doer redundancy so scheduler bugs cannot hide (the moral
/// equivalent of the §6 expected-value comparison, applied to ourselves).
class ProtocolChecker {
 public:
  explicit ProtocolChecker(const DramConfig& cfg,
                           ViolationPolicy policy = ViolationPolicy::kCount);

  /// Verify a whole trace. Under kCount, returns all violations (empty =
  /// clean); under kThrow, raises edsim::Error{kProtocolViolation} at the
  /// first one.
  std::vector<Violation> verify(const CommandLog& log) const;

  ViolationPolicy policy() const { return policy_; }

 private:
  DramConfig cfg_;
  ViolationPolicy policy_;
};

}  // namespace edsim::dram
