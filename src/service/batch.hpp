#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "core/evaluator.hpp"

namespace edsim::service {

/// Knobs for one batch run.
struct BatchOptions {
  /// Worker processes to shard across. 0 evaluates in-process (the
  /// differential reference path — no forking at all).
  unsigned workers = 0;
  /// Progress rows (telemetry::ProgressLog) go here; nullptr is silent.
  std::ostream* progress = nullptr;
  /// Completions between progress rows; 0 picks ~20 rows per batch.
  std::size_t progress_stride = 0;
};

/// Coordinator-side counters, updated as the batch drains. `queued`
/// counts submissions; `deduped` the submissions merged into an earlier
/// identical request; `store_hits` the unique keys satisfied from the
/// memo/persistent store without simulating; `retried` tasks requeued
/// after their worker died.
struct BatchProgress {
  std::uint64_t queued = 0;
  std::uint64_t deduped = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t done = 0;
  std::uint64_t retried = 0;
  std::uint64_t workers_lost = 0;
};

/// Design-space exploration as a service: accepts a queue of evaluation
/// requests, deduplicates them against each other and against the
/// evaluator's caches (memo + persistent result store), computes warm-up
/// checkpoints once in the coordinator, and shards the residual
/// simulations across forked worker processes — shipping each task as
/// (config, workload, warm-up snapshot) so workers restore instead of
/// re-warming. Results stream back in completion order, are preloaded
/// into the evaluator's caches (and thus persisted when a store is
/// attached), and are returned in submission order.
///
/// Determinism contract: evaluate() is deterministic per (config,
/// workload), so run() returns bit-identical metrics at every worker
/// count — including 0 (in-process) — and regardless of completion
/// order or mid-batch worker deaths (dead workers' tasks are requeued).
/// Pinned by tests/test_result_store.cpp.
class BatchEvaluator {
 public:
  /// The evaluator is copied; copies share caches, so results computed
  /// here land in the caller's memo and result store too.
  explicit BatchEvaluator(core::Evaluator ev, BatchOptions opt = {});

  /// Queue one request; returns its index (run()'s result order).
  std::size_t submit(const core::SystemConfig& cfg,
                     const core::EvalWorkload& w);
  std::size_t size() const { return requests_.size(); }

  /// Observer fired once per *request* as it resolves — cache hits during
  /// the dedup pre-pass first, then worker results in completion order.
  /// Runs on the coordinator; safe to call terminate_worker() from it
  /// (the kill-a-worker-mid-batch test does).
  using ResultFn = std::function<void(std::size_t index,
                                      const core::Metrics& m)>;
  void set_on_result(ResultFn fn) { on_result_ = std::move(fn); }

  /// Drain the queue and return metrics in submission order. Callable
  /// once per submitted batch; submit() may be called again afterwards
  /// for a follow-up run.
  std::vector<core::Metrics> run();

  const BatchProgress& progress() const { return progress_; }

  /// Chaos hook: SIGKILL worker `w` of the pool currently inside run().
  /// No-op outside a sharded run.
  void terminate_worker(unsigned w);

 private:
  struct Request {
    core::SystemConfig cfg;
    core::EvalWorkload w;
    std::uint64_t key = 0;
  };
  /// Dedup plan: one entry per unique result key, in first-seen order.
  struct Plan {
    std::vector<std::size_t> rep;               ///< representative request
    std::vector<std::vector<std::size_t>> fan;  ///< all requests sharing it
  };

  void run_sharded(const Plan& plan, const std::vector<std::size_t>& residual,
                   std::vector<core::Metrics>& results,
                   std::vector<bool>& resolved);
  void resolve(std::size_t request_index, const core::Metrics& m,
               std::vector<core::Metrics>& results,
               std::vector<bool>& resolved);

  core::Evaluator ev_;
  BatchOptions opt_;
  std::vector<Request> requests_;
  BatchProgress progress_;
  ResultFn on_result_;
  void* pool_ = nullptr;  ///< live ProcessPool during run_sharded only
};

}  // namespace edsim::service
