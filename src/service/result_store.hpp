#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/evaluator.hpp"

namespace edsim::service {

/// Version byte of the `EDRS` store envelope. Bump on any change to the
/// record payload layout (it covers the wire.hpp Metrics encoding); the
/// reader rejects mismatches with Error{kStoreFormat} instead of
/// misinterpreting bytes.
inline constexpr std::uint8_t kResultStoreVersion = 2;

/// Content-addressed, on-disk evaluation cache: an append log of
/// (result_key, Metrics) records behind the in-memory memo, so design
/// sweeps warm-start across processes and machines.
///
/// File layout:
///
///   "EDRS" magic | version byte | record...
///   record := varint blob_len | sealed snapshot blob
///   blob payload := varint key | Metrics fields (service/wire.hpp)
///
/// Each record body is a common/snapshot envelope, so every record
/// carries its own magic/version/checksum. Writes are crash-safe by
/// construction: a record is appended with one buffered write and
/// flushed, so a crash can only ever leave a *torn tail* — a partial
/// final record — which open() detects, drops, counts in
/// stats().recovered_tail_records, and truncates away so the next append
/// starts from a clean boundary. Corruption anywhere *before* the tail
/// (a mid-file flip or a foreign file) is unrecoverable by appending and
/// raises Error{kStoreFormat}; the store never returns a metrics vector
/// that differs from what was put.
///
/// Thread-safe within one process. A single writer process is assumed
/// per file (the batch front end funnels all puts through the
/// coordinator); concurrent readers of an already-written file are fine.
class ResultStore final : public core::ResultStoreBase {
 public:
  /// Opens (replaying the log) or creates the store at `path`.
  explicit ResultStore(std::string path);
  ~ResultStore() override;

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  bool find(std::uint64_t key, core::Metrics* out) override;
  void put(std::uint64_t key, const core::Metrics& m) override;
  core::ResultStoreStats stats() const override;

  const std::string& path() const { return path_; }
  std::size_t entries() const;

 private:
  void open_or_create();

  mutable std::mutex mu_;
  std::string path_;
  std::unordered_map<std::uint64_t, core::Metrics> map_;
  core::ResultStoreStats stats_;
  std::FILE* file_ = nullptr;  ///< append handle, positioned at the tail
};

}  // namespace edsim::service
