#include "service/batch.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/snapshot.hpp"
#include "service/wire.hpp"
#include "telemetry/progress.hpp"

namespace edsim::service {

namespace {

/// Request frame shipped to a worker: the task's unique index and result
/// key, the design point itself, and (optionally) the pre-computed
/// warm-up snapshot so the worker restores instead of re-warming.
std::vector<std::uint8_t> encode_task(
    std::uint64_t task, std::uint64_t key, const core::SystemConfig& cfg,
    const core::EvalWorkload& wl, std::uint64_t ckpt_key,
    const std::shared_ptr<const std::vector<std::uint8_t>>& ckpt) {
  SnapshotWriter w;
  w.u64(task);
  w.u64(key);
  encode_system_config(w, cfg);
  encode_workload(w, wl);
  w.boolean(ckpt != nullptr);
  if (ckpt != nullptr) {
    w.u64(ckpt_key);
    w.u64(ckpt->size());
    w.bytes(ckpt->data(), ckpt->size());
  }
  return w.seal();
}

/// Worker-side decoded response.
struct TaskResponse {
  std::uint64_t task = 0;
  std::uint64_t key = 0;
  bool ok = false;
  core::Metrics metrics;
  std::string error;
};

TaskResponse decode_response(const std::vector<std::uint8_t>& frame) {
  SnapshotReader r(frame);
  TaskResponse resp;
  resp.task = r.u64();
  resp.key = r.u64();
  resp.ok = r.boolean();
  if (resp.ok) {
    resp.metrics = decode_metrics(r);
  } else {
    resp.error = r.str();
  }
  r.expect_end();
  return resp;
}

/// The child-side request loop body: decode a task, evaluate it with the
/// forked evaluator copy, encode the result. Built once in the
/// coordinator and invoked only inside worker processes.
ProcessPool::Handler make_handler(const core::Evaluator& base) {
  core::Evaluator ev = base;  // fork-time copy travels into the children
  bool initialized = false;
  return [ev, initialized](
             const std::vector<std::uint8_t>& req) mutable
             -> std::vector<std::uint8_t> {
    if (!initialized) {
      initialized = true;
      // We are a forked copy now, so these mutations stay in this
      // process: detach the persistent store (its file offset is shared
      // with the coordinator — only the coordinator appends), drop any
      // registry pointer, and evaluate single-threaded (only the forking
      // thread survived; the sharding itself is the parallelism).
      ev.set_result_store(nullptr);
      ev.set_metrics(nullptr);
      ev.set_threads(1);
    }
    SnapshotReader r(req);
    const std::uint64_t task = r.u64();
    const std::uint64_t key = r.u64();
    const core::SystemConfig cfg = decode_system_config(r);
    const core::EvalWorkload wl = decode_workload(r);
    if (r.boolean()) {
      const std::uint64_t ckpt_key = r.u64();
      std::vector<std::uint8_t> blob(static_cast<std::size_t>(r.u64()));
      r.bytes(blob.data(), blob.size());
      ev.import_checkpoint(ckpt_key, std::move(blob));
    }
    r.expect_end();
    SnapshotWriter out;
    out.u64(task);
    out.u64(key);
    try {
      const core::Metrics m = ev.evaluate(cfg, wl);
      out.boolean(true);
      encode_metrics(out, m);
    } catch (const std::exception& e) {
      SnapshotWriter err;
      err.u64(task);
      err.u64(key);
      err.boolean(false);
      err.str(e.what());
      return err.seal();
    }
    return out.seal();
  };
}

}  // namespace

BatchEvaluator::BatchEvaluator(core::Evaluator ev, BatchOptions opt)
    : ev_(std::move(ev)), opt_(opt) {}

std::size_t BatchEvaluator::submit(const core::SystemConfig& cfg,
                                   const core::EvalWorkload& w) {
  const std::size_t index = requests_.size();
  requests_.push_back(Request{cfg, w, ev_.result_key(cfg, w)});
  return index;
}

void BatchEvaluator::resolve(std::size_t request_index, const core::Metrics& m,
                             std::vector<core::Metrics>& results,
                             std::vector<bool>& resolved) {
  results[request_index] = m;
  resolved[request_index] = true;
  if (on_result_) on_result_(request_index, m);
}

std::vector<core::Metrics> BatchEvaluator::run() {
  progress_ = BatchProgress{};
  progress_.queued = requests_.size();
  std::vector<core::Metrics> results(requests_.size());
  std::vector<bool> resolved(requests_.size(), false);

  // Collapse duplicate submissions: one task per unique result key, in
  // first-seen order so the task list (and thus every downstream
  // decision) is a pure function of the submission sequence.
  Plan plan;
  std::unordered_map<std::uint64_t, std::size_t> first;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const auto [it, fresh] = first.emplace(requests_[i].key, plan.rep.size());
    if (fresh) {
      plan.rep.push_back(i);
      plan.fan.emplace_back(1, i);
    } else {
      plan.fan[it->second].push_back(i);
      ++progress_.deduped;
    }
  }

  // Cache pre-pass: anything already in the memo or the persistent store
  // resolves without simulating (or forking).
  std::vector<std::size_t> residual;
  for (std::size_t u = 0; u < plan.rep.size(); ++u) {
    core::Metrics m;
    if (ev_.lookup_result(requests_[plan.rep[u]].key, &m)) {
      ++progress_.store_hits;
      ++progress_.done;
      for (const std::size_t i : plan.fan[u]) resolve(i, m, results, resolved);
    } else {
      residual.push_back(u);
    }
  }

  if (!residual.empty()) {
    if (opt_.workers == 0) {
      // In-process reference path: evaluate() populates the memo and the
      // store itself.
      for (const std::size_t u : residual) {
        const Request& rq = requests_[plan.rep[u]];
        const core::Metrics m = ev_.evaluate(rq.cfg, rq.w);
        ++progress_.done;
        for (const std::size_t i : plan.fan[u]) {
          resolve(i, m, results, resolved);
        }
      }
    } else {
      run_sharded(plan, residual, results, resolved);
    }
  }

  // Leave the queue ready for a follow-up batch.
  requests_.clear();
  return results;
}

void BatchEvaluator::run_sharded(const Plan& plan,
                                 const std::vector<std::size_t>& residual,
                                 std::vector<core::Metrics>& results,
                                 std::vector<bool>& resolved) {
  // Warm-up snapshots are computed HERE, once per simulation shape, and
  // shipped inside the task frames — the unit of work migration. Tasks
  // sharing a shape ship the same blob (the checkpoint cache hands back
  // one shared pointer).
  std::vector<std::vector<std::uint8_t>> frames(plan.rep.size());
  for (const std::size_t u : residual) {
    const Request& rq = requests_[plan.rep[u]];
    frames[u] = encode_task(u, rq.key, rq.cfg, rq.w,
                            ev_.warmup_key(rq.cfg, rq.w),
                            ev_.warmup_checkpoint(rq.cfg, rq.w));
  }

  ProcessPool pool(opt_.workers, make_handler(ev_));
  pool_ = &pool;

  telemetry::ProgressLog log(opt_.progress,
                             {"queued", "deduped", "store-hit", "sent",
                              "in-flight", "done", "retried", "lost"});
  const std::size_t stride =
      opt_.progress_stride != 0
          ? opt_.progress_stride
          : std::max<std::size_t>(1, residual.size() / 20);
  const auto emit_row = [&](bool final_row) {
    const std::vector<std::uint64_t> vals{
        progress_.queued,     progress_.deduped, progress_.store_hits,
        progress_.dispatched, progress_.in_flight, progress_.done,
        progress_.retried,    progress_.workers_lost};
    if (final_row) {
      log.finish(vals);
    } else {
      log.row(vals);
    }
  };
  emit_row(false);

  std::deque<std::size_t> pending(residual.begin(), residual.end());
  // Which unique task each worker currently holds (-1 = idle).
  std::vector<std::ptrdiff_t> holding(pool.size(), -1);
  std::vector<bool> task_done(plan.rep.size(), false);
  std::size_t shard_done = 0;

  const auto dispatch_idle = [&] {
    for (unsigned w = 0; w < pool.size(); ++w) {
      if (pending.empty()) break;
      if (!pool.alive(w) || holding[w] >= 0) continue;
      const std::size_t u = pending.front();
      if (!pool.send(w, frames[u])) continue;  // death lands in wait()
      pending.pop_front();
      holding[w] = static_cast<std::ptrdiff_t>(u);
      ++progress_.dispatched;
      ++progress_.in_flight;
    }
  };
  const auto drop_held = [&](unsigned w) {
    if (holding[w] < 0) return;
    pending.push_front(static_cast<std::size_t>(holding[w]));
    holding[w] = -1;
    ++progress_.retried;
    --progress_.in_flight;
  };

  dispatch_idle();
  while (shard_done < residual.size()) {
    ProcessPool::Event ev;
    if (!pool.wait(ev)) break;  // every worker is gone
    if (ev.exited) {
      ++progress_.workers_lost;
      drop_held(ev.worker);
      dispatch_idle();
      continue;
    }
    TaskResponse resp;
    try {
      resp = decode_response(ev.payload);
      if (resp.task >= plan.rep.size() || task_done[resp.task]) {
        throw Error(ErrorKind::kWorkerProtocol, resp.task,
                    "worker answered an unknown or finished task");
      }
    } catch (const Error&) {
      // Desynced or corrupt worker stream: kill the worker; its held
      // task is requeued when wait() reports the death.
      pool.terminate(ev.worker);
      continue;
    }
    holding[ev.worker] = -1;
    --progress_.in_flight;
    const std::size_t u = static_cast<std::size_t>(resp.task);
    const Request& rq = requests_[plan.rep[u]];
    core::Metrics m;
    if (resp.ok) {
      m = resp.metrics;
      // Streamed result becomes cache state (and a store record) exactly
      // as if evaluate() had computed it here.
      ev_.preload_result(rq.key, m);
    } else {
      // The worker's evaluation failed. Re-run in-process so the
      // genuine exception propagates to the caller (or, if it somehow
      // succeeds here, use the result).
      m = ev_.evaluate(rq.cfg, rq.w);
    }
    task_done[u] = true;
    ++shard_done;
    ++progress_.done;
    for (const std::size_t i : plan.fan[u]) resolve(i, m, results, resolved);
    dispatch_idle();
    if (shard_done % stride == 0) emit_row(false);
  }
  pool_ = nullptr;

  // All workers died with work outstanding: finish in-process. Held
  // tasks come back to pending first.
  for (unsigned w = 0; w < pool.size(); ++w) drop_held(w);
  while (!pending.empty()) {
    const std::size_t u = pending.front();
    pending.pop_front();
    if (task_done[u]) continue;
    const Request& rq = requests_[plan.rep[u]];
    const core::Metrics m = ev_.evaluate(rq.cfg, rq.w);
    task_done[u] = true;
    ++shard_done;
    ++progress_.done;
    for (const std::size_t i : plan.fan[u]) resolve(i, m, results, resolved);
  }
  emit_row(true);
}

void BatchEvaluator::terminate_worker(unsigned w) {
  if (pool_ != nullptr) static_cast<ProcessPool*>(pool_)->terminate(w);
}

}  // namespace edsim::service
