#include "service/wire.hpp"

namespace edsim::service {

namespace {

/// Decode an enum stored as its underlying integer, rejecting values
/// outside [0, last].
template <typename E>
E decode_enum(SnapshotReader& r, E last, const char* what) {
  const std::uint64_t v = r.u64();
  if (v > static_cast<std::uint64_t>(last)) r.fail(std::string(what) +
                                                   " enum out of range");
  return static_cast<E>(v);
}

std::uint64_t enum_u64(auto e) { return static_cast<std::uint64_t>(e); }

}  // namespace

void encode_metrics(SnapshotWriter& w, const core::Metrics& m) {
  w.str(m.name);
  w.f64(m.die_area_mm2);
  w.f64(m.memory_area_mm2);
  w.f64(m.logic_area_mm2);
  w.f64(m.sustained_gbyte_s);
  w.f64(m.peak_gbyte_s);
  w.f64(m.bandwidth_efficiency);
  w.f64(m.avg_read_latency_ns);
  w.f64(m.worst_read_latency_ns);
  w.f64(m.wcet_read_latency_ns);
  w.f64(m.wcet_bandwidth_gbyte_s);
  w.f64(m.io_power_mw);
  w.f64(m.total_power_mw);
  w.f64(m.installed_mbit);
  w.f64(m.waste_mbit);
  w.f64(m.unit_cost_usd);
  w.f64(m.logic_speed);
  w.f64(m.junction_c);
  w.f64(m.retention_ms);
  w.f64(m.refresh_overhead);
  w.boolean(m.sampled);
  w.u32(m.sample_windows);
  w.f64(m.sustained_gbyte_s_ci);
  w.f64(m.avg_read_latency_ns_ci);
}

core::Metrics decode_metrics(SnapshotReader& r) {
  core::Metrics m;
  m.name = r.str();
  m.die_area_mm2 = r.f64();
  m.memory_area_mm2 = r.f64();
  m.logic_area_mm2 = r.f64();
  m.sustained_gbyte_s = r.f64();
  m.peak_gbyte_s = r.f64();
  m.bandwidth_efficiency = r.f64();
  m.avg_read_latency_ns = r.f64();
  m.worst_read_latency_ns = r.f64();
  m.wcet_read_latency_ns = r.f64();
  m.wcet_bandwidth_gbyte_s = r.f64();
  m.io_power_mw = r.f64();
  m.total_power_mw = r.f64();
  m.installed_mbit = r.f64();
  m.waste_mbit = r.f64();
  m.unit_cost_usd = r.f64();
  m.logic_speed = r.f64();
  m.junction_c = r.f64();
  m.retention_ms = r.f64();
  m.refresh_overhead = r.f64();
  m.sampled = r.boolean();
  m.sample_windows = r.u32();
  m.sustained_gbyte_s_ci = r.f64();
  m.avg_read_latency_ns_ci = r.f64();
  return m;
}

void encode_system_config(SnapshotWriter& w, const core::SystemConfig& cfg) {
  w.str(cfg.name);
  w.u64(enum_u64(cfg.integration));
  w.u64(enum_u64(cfg.process));
  w.u64(cfg.required_memory.bit_count());
  w.u64(cfg.interface_bits);
  w.u64(cfg.banks);
  w.u64(cfg.page_bytes);
  w.u64(enum_u64(cfg.page_policy));
  w.u64(enum_u64(cfg.scheduler));
  w.u64(enum_u64(cfg.reliability));
  w.f64(cfg.logic_kgates);
}

core::SystemConfig decode_system_config(SnapshotReader& r) {
  core::SystemConfig cfg;
  cfg.name = r.str();
  cfg.integration = decode_enum(r, core::Integration::kEmbedded,
                                "integration");
  cfg.process = decode_enum(r, core::BaseProcess::kMerged, "process");
  cfg.required_memory = Capacity::bits(r.u64());
  cfg.interface_bits = r.u32();
  cfg.banks = r.u32();
  cfg.page_bytes = r.u32();
  cfg.page_policy = decode_enum(r, dram::PagePolicy::kTimeout, "page_policy");
  cfg.scheduler = decode_enum(r, dram::SchedulerKind::kTdm, "scheduler");
  cfg.reliability = decode_enum(r, core::ReliabilityPreset::kFull,
                                "reliability");
  cfg.logic_kgates = r.f64();
  return cfg;
}

void encode_workload(SnapshotWriter& w, const core::EvalWorkload& wl) {
  w.f64(wl.demand_gbyte_s);
  w.u64(wl.stream_clients);
  w.u64(wl.random_clients);
  w.u64(wl.sim_cycles);
  w.u64(wl.seed);
  w.u64(wl.warmup_cycles);
  w.f64(wl.logic_power_w);
}

core::EvalWorkload decode_workload(SnapshotReader& r) {
  core::EvalWorkload wl;
  wl.demand_gbyte_s = r.f64();
  wl.stream_clients = r.u32();
  wl.random_clients = r.u32();
  wl.sim_cycles = r.u64();
  wl.seed = r.u64();
  wl.warmup_cycles = r.u64();
  wl.logic_power_w = r.f64();
  return wl;
}

}  // namespace edsim::service
