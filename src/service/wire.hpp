#pragma once

#include "common/snapshot.hpp"
#include "core/evaluator.hpp"
#include "core/system_config.hpp"

namespace edsim::service {

/// Binary codec shared by the persistent result store and the sharded
/// worker protocol: Metrics, SystemConfig and EvalWorkload encoded onto
/// the common/snapshot envelope (varint integers, bit-exact doubles).
/// Decoders are fully bounds-checked through SnapshotReader — malformed
/// bytes produce a structured error, never undefined behaviour — and
/// range-check every enum, so a corrupted byte cannot smuggle an invalid
/// enumerator into the simulator. A round trip is bit-identical, which is
/// what lets store hits and worker results stand in for local
/// evaluations.

void encode_metrics(SnapshotWriter& w, const core::Metrics& m);
core::Metrics decode_metrics(SnapshotReader& r);

void encode_system_config(SnapshotWriter& w, const core::SystemConfig& cfg);
core::SystemConfig decode_system_config(SnapshotReader& r);

void encode_workload(SnapshotWriter& w, const core::EvalWorkload& wl);
core::EvalWorkload decode_workload(SnapshotReader& r);

}  // namespace edsim::service
