#include "service/result_store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/varint.hpp"
#include "service/wire.hpp"

namespace edsim::service {

namespace {

constexpr std::uint8_t kMagic[4] = {'E', 'D', 'R', 'S'};
constexpr std::size_t kHeaderBytes = sizeof kMagic + 1;

[[noreturn]] void throw_format(const std::string& what) {
  throw Error(ErrorKind::kStoreFormat, 0, what);
}

/// One encoded record: varint length prefix + the sealed snapshot blob
/// holding (key, metrics). The blob's own envelope checksum is the
/// per-record integrity check.
std::vector<std::uint8_t> encode_record(std::uint64_t key,
                                        const core::Metrics& m) {
  SnapshotWriter w;
  w.u64(key);
  encode_metrics(w, m);
  const std::vector<std::uint8_t> blob = w.seal();
  std::vector<std::uint8_t> rec;
  rec.reserve(blob.size() + 5);
  encode_varint(rec, blob.size());
  rec.insert(rec.end(), blob.begin(), blob.end());
  return rec;
}

}  // namespace

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  open_or_create();
}

ResultStore::~ResultStore() {
  if (file_ != nullptr) std::fclose(file_);
}

void ResultStore::open_or_create() {
  namespace fs = std::filesystem;

  std::vector<std::uint8_t> bytes;
  if (fs::exists(path_)) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw_format("result store unreadable: " + path_);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }

  std::size_t valid_end = kHeaderBytes;
  if (bytes.empty()) {
    // Fresh (or zero-byte) store: write the header below.
    valid_end = 0;
  } else {
    if (bytes.size() < kHeaderBytes ||
        std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
      throw_format("bad result-store magic (want EDRS): " + path_);
    }
    if (bytes[sizeof kMagic] != kResultStoreVersion) {
      throw_format("unsupported result-store version " +
                   std::to_string(bytes[sizeof kMagic]) + " (reader supports " +
                   std::to_string(kResultStoreVersion) + ")");
    }
    std::size_t off = kHeaderBytes;
    while (off < bytes.size()) {
      std::uint64_t blob_len = 0;
      std::size_t cursor = off;
      if (!decode_varint(bytes.data(), bytes.size(), cursor, blob_len) ||
          blob_len > bytes.size() - cursor) {
        // Length prefix runs past EOF: can only be a torn final append.
        ++stats_.recovered_tail_records;
        break;
      }
      try {
        SnapshotReader r(bytes.data() + cursor,
                         static_cast<std::size_t>(blob_len));
        const std::uint64_t key = r.u64();
        core::Metrics m = decode_metrics(r);
        r.expect_end();
        map_[key] = std::move(m);  // last append wins
      } catch (const Error&) {
        if (cursor + blob_len == bytes.size()) {
          // The damaged record is the file's final bytes — a crash mid-
          // append. Drop it and truncate back to the last good boundary.
          ++stats_.recovered_tail_records;
          break;
        }
        // Damage with intact records behind it is not a torn append;
        // refuse the file rather than silently dropping data.
        throw_format("result store record corrupt mid-file at offset " +
                     std::to_string(off) + ": " + path_);
      }
      off = cursor + static_cast<std::size_t>(blob_len);
      valid_end = off;
    }
    stats_.bytes_read = bytes.size();
    stats_.entries = map_.size();
  }

  if (valid_end == 0) {
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) throw_format("result store unwritable: " + path_);
    std::fwrite(kMagic, 1, sizeof kMagic, file_);
    std::fputc(kResultStoreVersion, file_);
  } else {
    // Truncate any torn tail away, then append from the clean boundary.
    if (valid_end < bytes.size()) fs::resize_file(path_, valid_end);
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr) throw_format("result store unwritable: " + path_);
  }
  if (std::fflush(file_) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw_format("result store flush failed: " + path_);
  }
}

bool ResultStore::find(std::uint64_t key, core::Metrics* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *out = it->second;
  return true;
}

void ResultStore::put(std::uint64_t key, const core::Metrics& m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!map_.emplace(key, m).second) return;  // idempotent re-put
  stats_.entries = map_.size();
  const std::vector<std::uint8_t> rec = encode_record(key, m);
  // One buffered write + flush: a crash between the two leaves at worst
  // a torn tail, which the next open() recovers.
  if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size() ||
      std::fflush(file_) != 0) {
    throw_format("result store append failed: " + path_);
  }
  stats_.bytes_written += rec.size();
}

core::ResultStoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ResultStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace edsim::service
