#pragma once

#include <string>

#include "common/units.hpp"

namespace edsim::mpeg {

/// Video frame geometry in 4:2:0 sampling (12 bit/pixel). The paper's §4.1
/// numbers — PAL frame = 4.75 Mbit, NTSC = 3.96 Mbit — come out exactly
/// in binary Mbit.
struct FrameFormat {
  std::string name;
  unsigned width = 720;
  unsigned height = 576;
  double fps = 25.0;

  unsigned pixels() const { return width * height; }
  /// Luma plane bytes (1 byte/pixel).
  std::uint64_t luma_bytes() const { return pixels(); }
  /// Both chroma planes together (4:2:0: quarter resolution each).
  std::uint64_t chroma_bytes() const { return pixels() / 2; }
  std::uint64_t frame_bytes() const { return luma_bytes() + chroma_bytes(); }
  Capacity frame_capacity() const { return Capacity::bytes(frame_bytes()); }

  unsigned macroblocks() const { return (width / 16) * (height / 16); }
};

/// PAL: 720x576 @ 25 Hz -> 4.75 Mbit per 4:2:0 frame.
FrameFormat pal();
/// NTSC: 720x480 @ 29.97 Hz -> 3.96 Mbit per 4:2:0 frame.
FrameFormat ntsc();

}  // namespace edsim::mpeg
