#pragma once

#include <cstdint>

#include "clients/system.hpp"
#include "mpeg/decoder_model.hpp"

namespace edsim::mpeg {

/// Motion-compensation client: paced block reads. Each "prediction" is a
/// rectangular reference-block fetch — `rows_per_block` rows of
/// `bytes_per_row` at `pitch_bytes` spacing from a pseudo-random motion-
/// vector target — issued as one burst per row. This produces exactly the
/// scattered page behaviour that separates sustained from peak bandwidth.
class McClient final : public clients::Client {
 public:
  struct Params {
    std::uint64_t region_base = 0;
    std::uint64_t region_bytes = 1 << 20;
    std::uint64_t pitch_bytes = 720;   ///< frame line pitch
    unsigned rows_per_block = 17;
    unsigned bytes_per_row = 17;
    unsigned burst_bytes = 32;
    std::uint64_t block_period_cycles = 100;  ///< pacing per prediction
    std::uint64_t total_blocks = 0;           ///< 0 = endless
    std::uint64_t seed = 7;
  };

  McClient(unsigned id, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;

  std::uint64_t blocks_issued() const { return blocks_; }

 private:
  void start_block();

  Params p_;
  Rng rng_;
  std::uint64_t block_base_ = 0;
  unsigned row_in_block_ = 0;   ///< rows already issued of current block
  bool block_active_ = false;
  std::uint64_t next_block_cycle_ = 0;
  std::uint64_t blocks_ = 0;
};

/// Wire the four decoder memory clients (§4.1) into a memory system whose
/// channel hosts the decoder's memory map. Client pacing is derived from
/// the analytic bandwidth demands and the channel clock. Returns indices
/// of the added clients in the order: vbv, mc, reconstruction, display.
struct DecoderClientIds {
  std::size_t vbv = 0;
  std::size_t mc = 0;
  std::size_t reconstruction = 0;
  std::size_t display = 0;
};

DecoderClientIds add_decoder_clients(clients::MemorySystem& system,
                                     const DecoderModel& model,
                                     const MemoryMap& map);

}  // namespace edsim::mpeg
