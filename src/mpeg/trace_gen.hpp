#pragma once

#include <cstdint>
#include <memory>

#include "clients/compiled_trace.hpp"
#include "clients/system.hpp"
#include "clients/workload_cache.hpp"
#include "mpeg/decoder_model.hpp"

namespace edsim::mpeg {

/// Motion-compensation client: paced block reads. Each "prediction" is a
/// rectangular reference-block fetch — `rows_per_block` rows of
/// `bytes_per_row` at `pitch_bytes` spacing from a pseudo-random motion-
/// vector target — issued as one burst per row. This produces exactly the
/// scattered page behaviour that separates sustained from peak bandwidth.
class McClient final : public clients::Client {
 public:
  struct Params {
    std::uint64_t region_base = 0;
    std::uint64_t region_bytes = 1 << 20;
    std::uint64_t pitch_bytes = 720;   ///< frame line pitch
    unsigned rows_per_block = 17;
    unsigned bytes_per_row = 17;
    unsigned burst_bytes = 32;
    std::uint64_t block_period_cycles = 100;  ///< pacing per prediction
    std::uint64_t total_blocks = 0;           ///< 0 = endless
    std::uint64_t seed = 7;
  };

  McClient(unsigned id, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;

  std::uint64_t blocks_issued() const { return blocks_; }

 private:
  void start_block();

  Params p_;
  Rng rng_;
  std::uint64_t block_base_ = 0;
  unsigned row_in_block_ = 0;   ///< rows already issued of current block
  bool block_active_ = false;
  std::uint64_t next_block_cycle_ = 0;
  std::uint64_t blocks_ = 0;
};

/// Wire the four decoder memory clients (§4.1) into a memory system whose
/// channel hosts the decoder's memory map. Client pacing is derived from
/// the analytic bandwidth demands and the channel clock. Returns indices
/// of the added clients in the order: vbv, mc, reconstruction, display.
struct DecoderClientIds {
  std::size_t vbv = 0;
  std::size_t mc = 0;
  std::size_t reconstruction = 0;
  std::size_t display = 0;
};

DecoderClientIds add_decoder_clients(clients::MemorySystem& system,
                                     const DecoderModel& model,
                                     const MemoryMap& map);

/// The four decoder client parameter sets, derived once from the analytic
/// bandwidth demands, the channel clock, and the memory map — shared by
/// the live-generator path (`add_decoder_clients`) and the compiled
/// replay path so the two can never drift apart.
struct DecoderClientParams {
  clients::StreamClient::Params vbv;
  McClient::Params mc;
  clients::StreamClient::Params reconstruction;
  clients::StreamClient::Params display;
};

DecoderClientParams derive_decoder_client_params(unsigned burst_bytes,
                                                 Frequency clock,
                                                 const DecoderModel& model,
                                                 const MemoryMap& map);

/// Compile the motion-compensation client: drive a real McClient through
/// `max_blocks` prediction blocks (or `p.total_blocks` when finite),
/// recording one kPacedClock record per block start and kImmediate
/// records for the remaining rows — bit-identical replay of the paced
/// block fetch under any backpressure.
std::shared_ptr<const clients::CompiledTrace> compile_mc(
    const McClient::Params& p, std::uint64_t max_blocks = 0);

/// Content-hash key for `compile_mc` results (see clients::compile_key).
std::uint64_t compile_key(const McClient::Params& p, std::uint64_t max_blocks);

/// The compiled decoder workload: four shared arenas sized so that a
/// replay window of `window_cycles` can never exhaust them.
struct CompiledDecoderWorkload {
  std::shared_ptr<const clients::CompiledTrace> vbv;
  std::shared_ptr<const clients::CompiledTrace> mc;
  std::shared_ptr<const clients::CompiledTrace> reconstruction;
  std::shared_ptr<const clients::CompiledTrace> display;
};

/// Compile the §4.1 decoder client mix once for replay windows up to
/// `window_cycles`. When `cache` is non-null, arenas are shared through
/// it across calls/threads keyed by content hash.
CompiledDecoderWorkload compile_decoder_clients(
    unsigned burst_bytes, Frequency clock, const DecoderModel& model,
    const MemoryMap& map, std::uint64_t window_cycles,
    clients::WorkloadCache* cache = nullptr);

/// Drop-in replacement for `add_decoder_clients` that adds zero-copy
/// ArenaReplayClients over a compiled workload instead of live
/// generators. Controller stats are bit-identical to the generator path
/// for runs of at most `window_cycles` cycles.
DecoderClientIds add_compiled_decoder_clients(
    clients::MemorySystem& system, const DecoderModel& model,
    const MemoryMap& map, std::uint64_t window_cycles,
    clients::WorkloadCache* cache = nullptr);

}  // namespace edsim::mpeg
