#include "mpeg/frame_geometry.hpp"

namespace edsim::mpeg {

FrameFormat pal() { return FrameFormat{"PAL", 720, 576, 25.0}; }

FrameFormat ntsc() { return FrameFormat{"NTSC", 720, 480, 29.97}; }

}  // namespace edsim::mpeg
