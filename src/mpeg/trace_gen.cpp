#include "mpeg/trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace edsim::mpeg {

McClient::McClient(unsigned id, const Params& p)
    : Client(id, "motion_comp"), p_(p), rng_(p.seed) {
  require(p_.rows_per_block >= 1, "mc client: rows_per_block must be >= 1");
  require(p_.bytes_per_row >= 1, "mc client: bytes_per_row must be >= 1");
  require(p_.burst_bytes >= 1, "mc client: burst_bytes must be >= 1");
  require(p_.pitch_bytes >= p_.bytes_per_row,
          "mc client: pitch shorter than a block row");
  const std::uint64_t block_span =
      static_cast<std::uint64_t>(p_.rows_per_block) * p_.pitch_bytes;
  require(p_.region_bytes > block_span,
          "mc client: region too small for one block");
}

void McClient::start_block() {
  const std::uint64_t block_span =
      static_cast<std::uint64_t>(p_.rows_per_block) * p_.pitch_bytes;
  const std::uint64_t span = p_.region_bytes - block_span;
  block_base_ = p_.region_base + rng_.next_below(span);
  row_in_block_ = 0;
  block_active_ = true;
  ++blocks_;
}

bool McClient::has_request(std::uint64_t cycle) const {
  if (block_active_) return true;  // finish the current block back-to-back
  return !finished() && cycle >= next_block_cycle_;
}

dram::Request McClient::make_request(std::uint64_t cycle) {
  if (!block_active_) {
    start_block();
    next_block_cycle_ =
        std::max(next_block_cycle_ + p_.block_period_cycles, cycle);
  }
  dram::Request r;
  r.type = dram::AccessType::kRead;
  const std::uint64_t row_addr =
      block_base_ + static_cast<std::uint64_t>(row_in_block_) * p_.pitch_bytes;
  r.addr = row_addr - row_addr % p_.burst_bytes;
  r.tag = blocks_;
  ++row_in_block_;
  if (row_in_block_ >= p_.rows_per_block) block_active_ = false;
  return r;
}

bool McClient::finished() const {
  return p_.total_blocks != 0 && blocks_ >= p_.total_blocks && !block_active_;
}

namespace {

/// Cycles between bursts to sustain `bw` on a channel at `clock` with
/// `burst_bytes` per request (rounded down so the client can keep up).
std::uint64_t period_for(Bandwidth bw, Frequency clock, unsigned burst_bytes) {
  require(bw.bits_per_s > 0.0, "decoder clients: zero-bandwidth client");
  const double bytes_per_cycle = bw.bits_per_s / 8.0 / clock.hz();
  const double period = static_cast<double>(burst_bytes) / bytes_per_cycle;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(period));
}

}  // namespace

DecoderClientParams derive_decoder_client_params(unsigned burst_bytes,
                                                 Frequency clock,
                                                 const DecoderModel& model,
                                                 const MemoryMap& map) {
  const auto demands = model.bandwidth();
  require(demands.size() == 4, "decoder clients: unexpected demand count");

  const Region* vbv = map.find("vbv_input");
  const Region* ref0 = map.find("reference_0");
  const Region* ref1 = map.find("reference_1");
  const Region* out = map.find("output_conversion");
  require(vbv && ref0 && ref1 && out,
          "decoder clients: memory map missing decoder regions");

  DecoderClientParams cp;

  // VBV: modelled as a write stream at the full in+out rate (the read
  // side is tiny and strictly sequential; folding it keeps one client).
  cp.vbv.base = vbv->base;
  cp.vbv.length = vbv->bytes;
  cp.vbv.burst_bytes = burst_bytes;
  cp.vbv.type = dram::AccessType::kWrite;
  cp.vbv.period_cycles = static_cast<unsigned>(
      period_for(demands[0].total(), clock, burst_bytes));

  // Motion compensation: block reads over both reference frames.
  cp.mc.region_base = ref0->base;
  cp.mc.region_bytes = ref1->end() - ref0->base;
  cp.mc.pitch_bytes = model.config().format.width;
  cp.mc.rows_per_block = 17;
  cp.mc.bytes_per_row = 17;
  cp.mc.burst_bytes = burst_bytes;
  // Pace blocks so MC's *useful* rate matches the analytic demand:
  // each block moves rows_per_block bursts.
  const double preds_per_s =
      static_cast<double>(model.config().format.macroblocks()) *
      model.config().format.fps * model.predictions_per_macroblock();
  const double cycles_per_block = clock.hz() / preds_per_s;
  cp.mc.block_period_cycles =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cycles_per_block));

  // Reconstruction: sequential writes of decoded pictures.
  cp.reconstruction.base = ref0->base;
  cp.reconstruction.length = ref1->end() - ref0->base;
  cp.reconstruction.burst_bytes = burst_bytes;
  cp.reconstruction.type = dram::AccessType::kWrite;
  cp.reconstruction.period_cycles = static_cast<unsigned>(
      period_for(demands[2].total(), clock, burst_bytes));

  // Display: sequential reads from the output-conversion buffer.
  cp.display.base = out->base;
  cp.display.length = out->bytes;
  cp.display.burst_bytes = burst_bytes;
  cp.display.type = dram::AccessType::kRead;
  cp.display.period_cycles = static_cast<unsigned>(
      period_for(demands[3].total(), clock, burst_bytes));

  return cp;
}

DecoderClientIds add_decoder_clients(clients::MemorySystem& system,
                                     const DecoderModel& model,
                                     const MemoryMap& map) {
  const auto& cfg = system.controller().config();
  const DecoderClientParams cp =
      derive_decoder_client_params(cfg.bytes_per_access(), cfg.clock, model,
                                   map);

  DecoderClientIds ids;
  unsigned next_id = static_cast<unsigned>(system.client_count());

  ids.vbv = system.client_count();
  system.add_client(std::make_unique<clients::StreamClient>(
      next_id++, "vbv_input", cp.vbv));

  ids.mc = system.client_count();
  system.add_client(std::make_unique<McClient>(next_id++, cp.mc));

  ids.reconstruction = system.client_count();
  system.add_client(std::make_unique<clients::StreamClient>(
      next_id++, "reconstruction", cp.reconstruction));

  ids.display = system.client_count();
  system.add_client(std::make_unique<clients::StreamClient>(
      next_id++, "display", cp.display));

  return ids;
}

std::shared_ptr<const clients::CompiledTrace> compile_mc(
    const McClient::Params& p, std::uint64_t max_blocks) {
  const std::uint64_t blocks = p.total_blocks != 0 ? p.total_blocks
                                                   : max_blocks;
  require(blocks > 0, "compile mc: endless params need a max_blocks budget");
  McClient source(0, p);
  clients::CompiledTraceBuilder b;
  b.reserve(blocks * p.rows_per_block);
  for (std::uint64_t blk = 0; blk < blocks; ++blk) {
    for (unsigned row = 0; row < p.rows_per_block; ++row) {
      // The address/tag sequence depends only on the per-block RNG draws,
      // never on issue cycles, so driving the client at cycle 0 captures
      // the exact sequence the live client would produce.
      const dram::Request req = source.make_request(0);
      clients::CompiledRecord r;
      r.addr = req.addr;
      r.type = req.type;
      r.tag = req.tag;  // = 1-based block number, constant across rows
      if (row == 0) {
        r.pacing = clients::PacingKind::kPacedClock;
        r.param = p.block_period_cycles;
      } else {
        r.pacing = clients::PacingKind::kImmediate;
      }
      b.add(r);
    }
  }
  return b.build();
}

std::uint64_t compile_key(const McClient::Params& p, std::uint64_t max_blocks) {
  ContentHasher h;
  h.mix(std::uint64_t{4})  // client-kind discriminator (see clients::compile_key)
      .mix(p.region_base)
      .mix(p.region_bytes)
      .mix(p.pitch_bytes)
      .mix(p.rows_per_block)
      .mix(p.bytes_per_row)
      .mix(p.burst_bytes)
      .mix(p.block_period_cycles)
      .mix(p.total_blocks)
      .mix(p.seed)
      .mix(max_blocks);
  return h.digest();
}

namespace {

/// A client accepting at least `gap` apart issues at most W/gap + 1
/// requests in a window of W cycles; +1 more makes the compiled prefix
/// provably inexhaustible within the window.
std::uint64_t budget_for(std::uint64_t window_cycles, std::uint64_t gap) {
  return window_cycles / std::max<std::uint64_t>(1, gap) + 2;
}

std::shared_ptr<const clients::CompiledTrace> through_cache(
    clients::WorkloadCache* cache, std::uint64_t key,
    const clients::WorkloadCache::CompileFn& compile) {
  return cache ? cache->get_or_compile(key, compile) : compile();
}

}  // namespace

CompiledDecoderWorkload compile_decoder_clients(
    unsigned burst_bytes, Frequency clock, const DecoderModel& model,
    const MemoryMap& map, std::uint64_t window_cycles,
    clients::WorkloadCache* cache) {
  const DecoderClientParams cp =
      derive_decoder_client_params(burst_bytes, clock, model, map);

  CompiledDecoderWorkload w;
  const std::uint64_t vbv_n = budget_for(window_cycles, cp.vbv.period_cycles);
  w.vbv = through_cache(cache, clients::compile_key(cp.vbv, vbv_n),
                        [&] { return clients::compile_stream(cp.vbv, vbv_n); });
  const std::uint64_t mc_n =
      budget_for(window_cycles, cp.mc.block_period_cycles);
  w.mc = through_cache(cache, compile_key(cp.mc, mc_n),
                       [&] { return compile_mc(cp.mc, mc_n); });
  const std::uint64_t rec_n =
      budget_for(window_cycles, cp.reconstruction.period_cycles);
  w.reconstruction =
      through_cache(cache, clients::compile_key(cp.reconstruction, rec_n), [&] {
        return clients::compile_stream(cp.reconstruction, rec_n);
      });
  const std::uint64_t dis_n =
      budget_for(window_cycles, cp.display.period_cycles);
  w.display =
      through_cache(cache, clients::compile_key(cp.display, dis_n), [&] {
        return clients::compile_stream(cp.display, dis_n);
      });
  return w;
}

DecoderClientIds add_compiled_decoder_clients(
    clients::MemorySystem& system, const DecoderModel& model,
    const MemoryMap& map, std::uint64_t window_cycles,
    clients::WorkloadCache* cache) {
  const auto& cfg = system.controller().config();
  const CompiledDecoderWorkload w = compile_decoder_clients(
      cfg.bytes_per_access(), cfg.clock, model, map, window_cycles, cache);

  DecoderClientIds ids;
  unsigned next_id = static_cast<unsigned>(system.client_count());

  ids.vbv = system.client_count();
  system.add_client(std::make_unique<clients::ArenaReplayClient>(
      next_id++, "vbv_input", w.vbv));

  ids.mc = system.client_count();
  system.add_client(std::make_unique<clients::ArenaReplayClient>(
      next_id++, "motion_comp", w.mc));

  ids.reconstruction = system.client_count();
  system.add_client(std::make_unique<clients::ArenaReplayClient>(
      next_id++, "reconstruction", w.reconstruction));

  ids.display = system.client_count();
  system.add_client(std::make_unique<clients::ArenaReplayClient>(
      next_id++, "display", w.display));

  return ids;
}

}  // namespace edsim::mpeg
