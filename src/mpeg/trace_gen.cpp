#include "mpeg/trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace edsim::mpeg {

McClient::McClient(unsigned id, const Params& p)
    : Client(id, "motion_comp"), p_(p), rng_(p.seed) {
  require(p_.rows_per_block >= 1, "mc client: rows_per_block must be >= 1");
  require(p_.bytes_per_row >= 1, "mc client: bytes_per_row must be >= 1");
  require(p_.burst_bytes >= 1, "mc client: burst_bytes must be >= 1");
  require(p_.pitch_bytes >= p_.bytes_per_row,
          "mc client: pitch shorter than a block row");
  const std::uint64_t block_span =
      static_cast<std::uint64_t>(p_.rows_per_block) * p_.pitch_bytes;
  require(p_.region_bytes > block_span,
          "mc client: region too small for one block");
}

void McClient::start_block() {
  const std::uint64_t block_span =
      static_cast<std::uint64_t>(p_.rows_per_block) * p_.pitch_bytes;
  const std::uint64_t span = p_.region_bytes - block_span;
  block_base_ = p_.region_base + rng_.next_below(span);
  row_in_block_ = 0;
  block_active_ = true;
  ++blocks_;
}

bool McClient::has_request(std::uint64_t cycle) const {
  if (block_active_) return true;  // finish the current block back-to-back
  return !finished() && cycle >= next_block_cycle_;
}

dram::Request McClient::make_request(std::uint64_t cycle) {
  if (!block_active_) {
    start_block();
    next_block_cycle_ =
        std::max(next_block_cycle_ + p_.block_period_cycles, cycle);
  }
  dram::Request r;
  r.type = dram::AccessType::kRead;
  const std::uint64_t row_addr =
      block_base_ + static_cast<std::uint64_t>(row_in_block_) * p_.pitch_bytes;
  r.addr = row_addr - row_addr % p_.burst_bytes;
  r.tag = blocks_;
  ++row_in_block_;
  if (row_in_block_ >= p_.rows_per_block) block_active_ = false;
  return r;
}

bool McClient::finished() const {
  return p_.total_blocks != 0 && blocks_ >= p_.total_blocks && !block_active_;
}

namespace {

/// Cycles between bursts to sustain `bw` on a channel at `clock` with
/// `burst_bytes` per request (rounded down so the client can keep up).
std::uint64_t period_for(Bandwidth bw, Frequency clock, unsigned burst_bytes) {
  require(bw.bits_per_s > 0.0, "decoder clients: zero-bandwidth client");
  const double bytes_per_cycle = bw.bits_per_s / 8.0 / clock.hz();
  const double period = static_cast<double>(burst_bytes) / bytes_per_cycle;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(period));
}

}  // namespace

DecoderClientIds add_decoder_clients(clients::MemorySystem& system,
                                     const DecoderModel& model,
                                     const MemoryMap& map) {
  const auto& cfg = system.controller().config();
  const unsigned burst = cfg.bytes_per_access();
  const Frequency clock = cfg.clock;
  const auto demands = model.bandwidth();
  require(demands.size() == 4, "decoder clients: unexpected demand count");

  const Region* vbv = map.find("vbv_input");
  const Region* ref0 = map.find("reference_0");
  const Region* ref1 = map.find("reference_1");
  const Region* out = map.find("output_conversion");
  require(vbv && ref0 && ref1 && out,
          "decoder clients: memory map missing decoder regions");

  DecoderClientIds ids;
  unsigned next_id = static_cast<unsigned>(system.client_count());

  // VBV: modelled as a write stream at the full in+out rate (the read
  // side is tiny and strictly sequential; folding it keeps one client).
  {
    clients::StreamClient::Params p;
    p.base = vbv->base;
    p.length = vbv->bytes;
    p.burst_bytes = burst;
    p.type = dram::AccessType::kWrite;
    p.period_cycles = static_cast<unsigned>(
        period_for(demands[0].total(), clock, burst));
    ids.vbv = system.client_count();
    system.add_client(std::make_unique<clients::StreamClient>(
        next_id++, "vbv_input", p));
  }

  // Motion compensation: block reads over both reference frames.
  {
    McClient::Params p;
    p.region_base = ref0->base;
    p.region_bytes = ref1->end() - ref0->base;
    p.pitch_bytes = model.config().format.width;
    p.rows_per_block = 17;
    p.bytes_per_row = 17;
    p.burst_bytes = burst;
    // Pace blocks so MC's *useful* rate matches the analytic demand:
    // each block moves rows_per_block bursts.
    const double preds_per_s =
        static_cast<double>(model.config().format.macroblocks()) *
        model.config().format.fps * model.predictions_per_macroblock();
    const double cycles_per_block = clock.hz() / preds_per_s;
    p.block_period_cycles =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cycles_per_block));
    ids.mc = system.client_count();
    system.add_client(std::make_unique<McClient>(next_id++, p));
  }

  // Reconstruction: sequential writes of decoded pictures.
  {
    clients::StreamClient::Params p;
    p.base = ref0->base;
    p.length = ref1->end() - ref0->base;
    p.burst_bytes = burst;
    p.type = dram::AccessType::kWrite;
    p.period_cycles = static_cast<unsigned>(
        period_for(demands[2].total(), clock, burst));
    ids.reconstruction = system.client_count();
    system.add_client(std::make_unique<clients::StreamClient>(
        next_id++, "reconstruction", p));
  }

  // Display: sequential reads from the output-conversion buffer.
  {
    clients::StreamClient::Params p;
    p.base = out->base;
    p.length = out->bytes;
    p.burst_bytes = burst;
    p.type = dram::AccessType::kRead;
    p.period_cycles = static_cast<unsigned>(
        period_for(demands[3].total(), clock, burst));
    ids.display = system.client_count();
    system.add_client(std::make_unique<clients::StreamClient>(
        next_id++, "display", p));
  }
  return ids;
}

}  // namespace edsim::mpeg
