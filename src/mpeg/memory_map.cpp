#include "mpeg/memory_map.hpp"

#include "common/error.hpp"

namespace edsim::mpeg {

MemoryMap::MemoryMap(std::uint64_t alignment) : alignment_(alignment) {
  require(alignment_ > 0 && (alignment_ & (alignment_ - 1)) == 0,
          "memory map: alignment must be a power of two");
}

Region MemoryMap::allocate(const std::string& name, Capacity size) {
  require(size.bit_count() > 0, "memory map: empty allocation");
  require(find(name) == nullptr, "memory map: duplicate region name");
  Region r;
  r.name = name;
  r.base = (top_ + alignment_ - 1) & ~(alignment_ - 1);
  r.bytes = size.byte_count();
  top_ = r.base + r.bytes;
  regions_.push_back(r);
  return regions_.back();
}

const Region* MemoryMap::find(const std::string& name) const {
  for (const auto& r : regions_)
    if (r.name == name) return &r;
  return nullptr;
}

}  // namespace edsim::mpeg
