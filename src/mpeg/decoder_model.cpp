#include "mpeg/decoder_model.hpp"

#include "common/error.hpp"

namespace edsim::mpeg {

void DecoderConfig::validate() const {
  require(format.width % 16 == 0 && format.height % 16 == 0,
          "decoder: frame dimensions must be macroblock-aligned");
  require(format.fps > 0.0, "decoder: fps must be positive");
  require(bitrate_mbit_s > 0.0, "decoder: bitrate must be positive");
  const double sum = frac_i + frac_p + frac_b;
  require(sum > 0.999 && sum < 1.001, "decoder: GOP fractions must sum to 1");
  require(mc_overfetch >= 1.0, "decoder: overfetch factor must be >= 1");
}

DecoderModel::DecoderModel(const DecoderConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

Capacity DecoderModel::vbv_buffer() const {
  // MP@ML VBV buffer: 1,835,008 bits = 1.75 (binary) Mbit.
  return Capacity::bits(1'835'008);
}

Capacity DecoderModel::output_buffer() const {
  const Capacity frame = cfg_.format.frame_capacity();
  if (!cfg_.reduced_output_buffer) {
    // Full frame: B-picture reconstruction + progressive-to-interlaced
    // conversion read out field by field.
    return frame;
  }
  // Reduced: a sliding window of one third of a frame; B-pictures are
  // decoded once per field instead (§4.1: "about 3 Mbit can be saved at
  // the expense of doubling the throughput ... as well as the memory
  // bandwidth of the motion compensation module").
  return Capacity::bits(frame.bit_count() / 3);
}

std::vector<BufferRequirement> DecoderModel::footprint() const {
  const Capacity frame = cfg_.format.frame_capacity();
  return {
      {"vbv_input", vbv_buffer()},
      {"reference_0", frame},
      {"reference_1", frame},
      {"output_conversion", output_buffer()},
  };
}

Capacity DecoderModel::total_footprint() const {
  Capacity total;
  for (const auto& b : footprint()) total = total + b.size;
  return total;
}

Capacity DecoderModel::output_buffer_saving() const {
  DecoderConfig standard = cfg_;
  standard.reduced_output_buffer = false;
  DecoderConfig reduced = cfg_;
  reduced.reduced_output_buffer = true;
  return DecoderModel(standard).output_buffer() -
         DecoderModel(reduced).output_buffer();
}

double DecoderModel::predictions_per_macroblock() const {
  const double b_factor = cfg_.reduced_output_buffer ? 2.0 : 1.0;
  return cfg_.frac_p * 1.0 + cfg_.frac_b * 2.0 * b_factor;
}

std::vector<BandwidthDemand> DecoderModel::bandwidth() const {
  const double fps = cfg_.format.fps;
  const double frame_bytes = static_cast<double>(cfg_.format.frame_bytes());
  const double bitrate = cfg_.bitrate_mbit_s * 1e6;

  // Motion compensation: per prediction, a 17x17 luma block plus two 9x9
  // chroma blocks (half-pel interpolation needs the +1 apron).
  const double bytes_per_pred = 17.0 * 17.0 + 2.0 * 9.0 * 9.0;
  const double preds_per_s = static_cast<double>(cfg_.format.macroblocks()) *
                             fps * predictions_per_macroblock();
  const double mc_read =
      preds_per_s * bytes_per_pred * cfg_.mc_overfetch * 8.0;

  return {
      {"vbv_input", Bandwidth{bitrate}, Bandwidth{bitrate}},
      {"motion_comp", Bandwidth{mc_read}, Bandwidth{}},
      {"reconstruction", Bandwidth{}, Bandwidth{frame_bytes * fps * 8.0}},
      {"display", Bandwidth{frame_bytes * fps * 8.0}, Bandwidth{}},
  };
}

Bandwidth DecoderModel::total_bandwidth() const {
  double bits = 0.0;
  for (const auto& d : bandwidth()) bits += d.total().bits_per_s;
  return Bandwidth{bits};
}

MemoryMap DecoderModel::build_memory_map() const {
  MemoryMap map(4096);
  for (const auto& b : footprint()) map.allocate(b.name, b.size);
  return map;
}

}  // namespace edsim::mpeg
