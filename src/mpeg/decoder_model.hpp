#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "mpeg/frame_geometry.hpp"
#include "mpeg/memory_map.hpp"

namespace edsim::mpeg {

/// MP@ML decoder parameters driving footprint and bandwidth (§4.1).
struct DecoderConfig {
  FrameFormat format = pal();
  double bitrate_mbit_s = 15.0;  ///< MP@ML maximum
  /// Fractions of picture types in the GOP (IBBPBBP...: 1 I, 4 P, 10 B of
  /// a 15-picture GOP is typical broadcast practice).
  double frac_i = 1.0 / 15.0;
  double frac_p = 4.0 / 15.0;
  double frac_b = 10.0 / 15.0;
  /// Motion-compensation overfetch: fetched bytes / useful bytes due to
  /// burst and page alignment of 17x17 / 9x9 reference blocks.
  double mc_overfetch = 1.4;
  /// §4.1 trade-off: shrink the progressive-to-interlaced output buffer
  /// by re-decoding B-pictures per field — saves ~3 Mbit, doubles the
  /// decode throughput and the MC bandwidth.
  bool reduced_output_buffer = false;

  void validate() const;
};

/// One line of the footprint budget.
struct BufferRequirement {
  std::string name;
  Capacity size;
};

/// One line of the bandwidth budget.
struct BandwidthDemand {
  std::string module;
  Bandwidth read;
  Bandwidth write;
  Bandwidth total() const {
    return Bandwidth{read.bits_per_s + write.bits_per_s};
  }
};

/// Analytic model of the decoder's memory system: buffer footprint,
/// per-module bandwidth, and the standard-vs-reduced output buffer
/// trade-off of §4.1.
class DecoderModel {
 public:
  explicit DecoderModel(const DecoderConfig& cfg);

  const DecoderConfig& config() const { return cfg_; }

  /// The buffer inventory (§4.1: input buffer, two frame buffers for
  /// bidirectional reconstruction, output buffer for progressive-to-
  /// interlaced conversion) plus the B reconstruction target.
  std::vector<BufferRequirement> footprint() const;
  Capacity total_footprint() const;
  bool fits_16mbit() const { return total_footprint() <= Capacity::mbit(16); }

  /// Capacity saved by the reduced-output-buffer mode vs. the standard
  /// configuration of the same format.
  Capacity output_buffer_saving() const;

  /// Per-module sustained bandwidth demands.
  std::vector<BandwidthDemand> bandwidth() const;
  Bandwidth total_bandwidth() const;

  /// Average reference predictions per macroblock given the GOP mix
  /// (P: 1, B: 2, I: 0), including the decode-twice factor in reduced
  /// mode.
  double predictions_per_macroblock() const;

  /// Lay the buffers out into a memory map (page-aligned).
  MemoryMap build_memory_map() const;

 private:
  Capacity vbv_buffer() const;
  Capacity output_buffer() const;
  DecoderConfig cfg_;
};

}  // namespace edsim::mpeg
