#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace edsim::mpeg {

/// A named region in the decoder's (embedded) memory.
struct Region {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  std::uint64_t end() const { return base + bytes; }
  Capacity capacity() const { return Capacity::bytes(bytes); }
};

/// Linear first-fit memory allocator for the decoder's buffers —
/// "optimizing the memory allocation" is the first of the §3
/// system-level problems.
class MemoryMap {
 public:
  explicit MemoryMap(std::uint64_t alignment = 4096);

  /// Returns a copy: a reference into regions_ would dangle as soon as
  /// the next allocation grows the vector.
  Region allocate(const std::string& name, Capacity size);
  const Region* find(const std::string& name) const;

  Capacity total_allocated() const { return Capacity::bytes(top_); }
  bool fits(Capacity budget) const {
    return total_allocated() <= budget;
  }
  const std::vector<Region>& regions() const { return regions_; }

 private:
  std::uint64_t alignment_;
  std::uint64_t top_ = 0;
  std::vector<Region> regions_;
};

}  // namespace edsim::mpeg
