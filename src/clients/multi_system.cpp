#include "clients/multi_system.hpp"

#include "common/error.hpp"

namespace edsim::clients {

MultiChannelSystem::MultiChannelSystem(const dram::DramConfig& per_channel,
                                       unsigned channels,
                                       dram::ChannelInterleave interleave,
                                       ArbiterKind arbiter,
                                       std::vector<double> weights)
    : memory_(per_channel, channels, interleave),
      arbiter_(Arbiter::make(arbiter, std::move(weights))) {}

Client& MultiChannelSystem::add_client(std::unique_ptr<Client> client) {
  require(client != nullptr, "multi system: null client");
  clients_.push_back(std::move(client));
  stats_.emplace_back();
  fifos_.emplace_back(
      memory_.channel(0).config().bytes_per_access());
  pending_.emplace_back();
  return *clients_.back();
}

void MultiChannelSystem::step() {
  const unsigned burst = memory_.channel(0).config().bytes_per_access();

  // 1. Completions.
  for (const dram::Request& r : memory_.drain_completed()) {
    const std::size_t i = r.client_id;
    stats_[i].completed++;
    stats_[i].latency.add(static_cast<double>(r.latency()));
    stats_[i].latency_samples.add(static_cast<double>(r.latency()));
    fifos_[i].on_complete();
    clients_[i]->notify_complete(r, cycle_);
  }

  // 2. Up to `channels` grants per cycle. A client with a parked
  //    (previously blocked) request offers that; otherwise its next
  //    request. Blocked requests park in pending_ and retry — nothing is
  //    dropped.
  std::vector<bool> ready(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i)
    ready[i] = pending_[i].has_value() || clients_[i]->has_request(cycle_);
  std::vector<bool> channel_granted(memory_.channels(), false);
  for (unsigned g = 0; g < memory_.channels(); ++g) {
    const std::size_t win = arbiter_->pick(ready);
    if (win == Arbiter::kNone) break;
    dram::Request r;
    if (pending_[win].has_value()) {
      r = *pending_[win];
      pending_[win].reset();
    } else {
      r = clients_[win]->make_request(cycle_);
      r.client_id = static_cast<unsigned>(win);
    }
    const unsigned ch = memory_.route(r.addr);
    if (channel_granted[ch] || !memory_.enqueue(r)) {
      pending_[win] = r;  // park and retry next cycle
      stats_[win].stall_cycles++;
      clients_[win]->notify_rejected(cycle_);
      ready[win] = false;
      continue;
    }
    channel_granted[ch] = true;
    arbiter_->granted(win, burst);
    stats_[win].issued++;
    stats_[win].bytes += burst;
    fifos_[win].on_issue();
    ready[win] =
        pending_[win].has_value() || clients_[win]->has_request(cycle_);
  }

  // 3. Sampling + advance.
  for (std::size_t i = 0; i < clients_.size(); ++i) fifos_[i].sample();
  memory_.tick();
  ++cycle_;
}

void MultiChannelSystem::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

}  // namespace edsim::clients
