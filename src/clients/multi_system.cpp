#include "clients/multi_system.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace edsim::clients {

MultiChannelSystem::MultiChannelSystem(const dram::DramConfig& per_channel,
                                       unsigned channels,
                                       dram::ChannelInterleave interleave,
                                       ArbiterKind arbiter,
                                       std::vector<double> weights)
    : memory_(per_channel, channels, interleave),
      arbiter_(Arbiter::make(arbiter, std::move(weights))) {}

Client& MultiChannelSystem::add_client(std::unique_ptr<Client> client) {
  require(client != nullptr, "multi system: null client");
  clients_.push_back(std::move(client));
  stats_.emplace_back();
  fifos_.emplace_back(
      memory_.channel(0).config().bytes_per_access());
  pending_.emplace_back();
  return *clients_.back();
}

void MultiChannelSystem::step() {
  const unsigned burst = memory_.channel(0).config().bytes_per_access();

  // 1. Completions.
  memory_.drain_completed_into(completed_scratch_);
  for (const dram::Request& r : completed_scratch_) {
    const std::size_t i = r.client_id;
    stats_[i].completed++;
    stats_[i].latency.add(static_cast<double>(r.latency()));
    stats_[i].latency_samples.add(static_cast<double>(r.latency()));
    fifos_[i].on_complete();
    clients_[i]->notify_complete(r, cycle_);
  }

  // 2. Up to `channels` grants per cycle. A client with a parked
  //    (previously blocked) request offers that; otherwise its next
  //    request. Blocked requests park in pending_ and retry — nothing is
  //    dropped.
  std::vector<bool>& ready = ready_;
  ready.assign(clients_.size(), false);
  for (std::size_t i = 0; i < clients_.size(); ++i)
    ready[i] = pending_[i].has_value() || clients_[i]->has_request(cycle_);
  std::vector<bool>& channel_granted = channel_granted_;
  channel_granted.assign(memory_.channels(), false);
  for (unsigned g = 0; g < memory_.channels(); ++g) {
    const std::size_t win = arbiter_->pick(ready);
    if (win == Arbiter::kNone) break;
    dram::Request r;
    if (pending_[win].has_value()) {
      r = *pending_[win];
      pending_[win].reset();
    } else {
      r = clients_[win]->make_request(cycle_);
      r.client_id = static_cast<unsigned>(win);
    }
    const unsigned ch = memory_.route(r.addr);
    if (channel_granted[ch] || !memory_.enqueue(r)) {
      pending_[win] = r;  // park and retry next cycle
      stats_[win].stall_cycles++;
      clients_[win]->notify_rejected(cycle_);
      ready[win] = false;
      continue;
    }
    channel_granted[ch] = true;
    arbiter_->granted(win, burst);
    stats_[win].issued++;
    stats_[win].bytes += burst;
    fifos_[win].on_issue();
    ready[win] =
        pending_[win].has_value() || clients_[win]->has_request(cycle_);
  }

  // 3. Sampling + advance.
  for (std::size_t i = 0; i < clients_.size(); ++i) fifos_[i].sample();
  memory_.tick();
  ++cycle_;
}

void MultiChannelSystem::skip_quiet_stretch(std::uint64_t end) {
  if (cycle_ >= end) return;
  if (memory_.has_completions()) return;
  std::uint64_t stop = std::min(end, memory_.next_event_cycle());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (pending_[i].has_value()) return;  // parked request retries each cycle
    const std::uint64_t wake = clients_[i]->next_request_cycle(cycle_);
    if (wake <= cycle_) return;
    stop = std::min(stop, wake);
  }
  if (stop <= cycle_) return;
  const std::uint64_t k = stop - cycle_;
  for (std::size_t i = 0; i < clients_.size(); ++i) fifos_[i].sample_repeated(k);
  memory_.advance_idle(k);
  cycle_ += k;
}

void MultiChannelSystem::run(std::uint64_t cycles) {
  const std::uint64_t end = cycle_ + cycles;
  while (cycle_ < end) {
    step();
    if (fast_forward_) skip_quiet_stretch(end);
  }
}

}  // namespace edsim::clients
