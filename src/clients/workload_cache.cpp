#include "clients/workload_cache.hpp"

namespace edsim::clients {

std::shared_ptr<const CompiledTrace> WorkloadCache::get_or_compile(
    std::uint64_t key, const CompileFn& compile) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Compile outside the lock: a miss storm across sweep threads must not
  // serialize. Duplicate compiles of the same key produce identical
  // arenas (compilation is pure), so first-insert-wins below is safe.
  std::shared_ptr<const CompiledTrace> built = compile();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.emplace(key, built);
  if (!inserted) return it->second;  // lost the race; share the winner
  return built;
}

std::shared_ptr<const CompiledTrace> WorkloadCache::find(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second;
}

std::uint64_t WorkloadCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t WorkloadCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t WorkloadCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t WorkloadCache::arena_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, trace] : map_) total += trace->arena_bytes();
  return total;
}

void WorkloadCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace edsim::clients
