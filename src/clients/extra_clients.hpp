#pragma once

#include "clients/client.hpp"

namespace edsim::clients {

/// Dependent-load client: issues the next request only after the
/// previous one completed (linked-list walk / pointer chasing). The
/// memory-latency-bound extreme — bank parallelism cannot help it, only
/// lower latency can (the §4.2 argument in client form).
class PointerChaseClient final : public Client {
 public:
  struct Params {
    std::uint64_t base = 0;
    std::uint64_t length = 1 << 20;
    unsigned burst_bytes = 32;
    std::uint64_t total_requests = 0;  ///< 0 = endless
    std::uint64_t seed = 5;
    unsigned think_cycles = 0;  ///< compute time between dependent loads
  };

  PointerChaseClient(unsigned id, std::string name, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  void notify_complete(const dram::Request& req,
                       std::uint64_t cycle) override;
  bool finished() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  Params p_;
  Rng rng_;
  bool outstanding_ = false;
  std::uint64_t ready_at_ = 0;
  std::uint64_t issued_ = 0;
};

/// On/off (bursty) client: alternates active bursts of back-to-back
/// requests with idle gaps — packet arrivals, DMA descriptors rings. The
/// duty cycle sets the average demand; the burstiness sets the FIFO
/// depth the §3 analysis must provision.
class BurstyClient final : public Client {
 public:
  struct Params {
    std::uint64_t base = 0;
    std::uint64_t length = 1 << 20;
    unsigned burst_bytes = 32;
    dram::AccessType type = dram::AccessType::kRead;
    unsigned on_requests = 16;   ///< requests per active burst
    unsigned off_cycles = 200;   ///< idle gap between bursts
    std::uint64_t total_requests = 0;
    std::uint64_t seed = 9;
    bool randomize_gap = true;   ///< exponential gaps with the same mean
  };

  BurstyClient(unsigned id, std::string name, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  Params p_;
  Rng rng_;
  std::uint64_t pos_ = 0;
  unsigned left_in_burst_;
  std::uint64_t next_burst_at_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace edsim::clients
