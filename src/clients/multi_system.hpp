#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "clients/arbiter.hpp"
#include "clients/client.hpp"
#include "clients/fifo_tracker.hpp"
#include "dram/multi_channel.hpp"

namespace edsim::clients {

/// Clients + arbiter over a multi-channel memory: the front end for the
/// paper's high-end systems (several modules side by side). One grant
/// per channel per cycle; a client whose target channel is backed up
/// does not block grants to other channels.
class MultiChannelSystem {
 public:
  MultiChannelSystem(const dram::DramConfig& per_channel, unsigned channels,
                     dram::ChannelInterleave interleave, ArbiterKind arbiter,
                     std::vector<double> weights = {});

  Client& add_client(std::unique_ptr<Client> client);

  void run(std::uint64_t cycles);

  dram::MultiChannel& memory() { return memory_; }
  const dram::MultiChannel& memory() const { return memory_; }

  std::size_t client_count() const { return clients_.size(); }
  const Client& client(std::size_t i) const { return *clients_[i]; }
  const ClientStats& client_stats(std::size_t i) const { return stats_[i]; }
  const FifoTracker& fifo(std::size_t i) const { return fifos_[i]; }

  Bandwidth aggregate_bandwidth() const {
    return memory_.sustained_bandwidth();
  }
  double bandwidth_efficiency() const {
    const double peak = memory_.peak_bandwidth().bits_per_s;
    return peak > 0.0 ? aggregate_bandwidth().bits_per_s / peak : 0.0;
  }

  /// Disable/enable the event-driven fast path (on by default; see
  /// MemorySystem::set_fast_forward).
  void set_fast_forward(bool on) { fast_forward_ = on; }

  /// Disable/enable every channel's controller-level burst-issue fast
  /// path (on by default; see dram::Controller::set_burst_issue). The
  /// multi-channel front end has no dense-stretch of its own — parked
  /// retries make its step ordering observable — but each channel's
  /// tick_until still bursts through saturated streaks.
  void set_burst_issue(bool on) {
    for (unsigned c = 0; c < memory_.channels(); ++c) {
      memory_.channel(c).set_burst_issue(on);
    }
  }

  /// Attach observability probes to channel `i` (nullptr detaches); see
  /// dram::MultiChannel::attach_telemetry.
  void attach_telemetry(unsigned i, dram::TelemetryHooks* hooks) {
    memory_.attach_telemetry(i, hooks);
  }

 private:
  void step();
  /// Fast-forward: bulk-credit quiet cycles up to `end` when no client is
  /// ready, nothing is parked and no channel has an event pending.
  void skip_quiet_stretch(std::uint64_t end);

  dram::MultiChannel memory_;
  std::unique_ptr<Arbiter> arbiter_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<ClientStats> stats_;
  std::vector<FifoTracker> fifos_;
  /// A request that lost its channel slot waits here and retries before
  /// the client is asked for new work — nothing is ever dropped.
  std::vector<std::optional<dram::Request>> pending_;
  std::uint64_t cycle_ = 0;
  std::vector<dram::Request> completed_scratch_;  // reused drain buffer
  std::vector<bool> ready_;                       // reused arbitration mask
  std::vector<bool> channel_granted_;             // reused grant mask
  bool fast_forward_ = true;
};

}  // namespace edsim::clients
