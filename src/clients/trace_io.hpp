#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "clients/client.hpp"

namespace edsim::clients {

/// Plain-text trace format, one record per line:
///
///     <cycle> <R|W> <byte-address>
///
/// `cycle` is the earliest issue cycle (monotonically non-decreasing),
/// the address may be decimal or 0x-prefixed hex. Blank lines and lines
/// starting with '#' are ignored.
///
/// Example:
///
///     # scanout burst
///     0    R 0x0
///     4    R 0x80
///     120  W 4096
std::vector<TraceRecord> parse_trace(std::istream& in);

/// Parse from a string (convenience for tests and embedded demos).
std::vector<TraceRecord> parse_trace_text(const std::string& text);

/// Load from a file; throws ConfigError when the file cannot be opened
/// or a line does not parse.
std::vector<TraceRecord> load_trace_file(const std::string& path);

/// Write records back out in the same format (round-trip capable).
void write_trace(std::ostream& out, const std::vector<TraceRecord>& trace);

/// Binary trace format `.edtrc` v2. Layout:
///
///     magic    6 bytes   "EDTRC\0"
///     version  u16 LE    2
///     records  repeated  0x01, flags (bit0 = write),
///                        varint cycle-delta (from previous record),
///                        varint byte-address
///     end      1 byte    0x00
///
/// Cycle deltas + LEB128 varints make dense traces ~5 bytes/record vs
/// ~20 for text. The stream needs no seeking, so readers and writers can
/// run over pipes. Corrupt or truncated input is rejected with a
/// structured `edsim::Error` of kind `kTraceFormat` whose cycle field
/// carries the index of the offending record.
inline constexpr std::array<char, 6> kBinaryTraceMagic = {'E', 'D', 'T', 'R',
                                                          'C', '\0'};
inline constexpr std::uint16_t kBinaryTraceVersion = 2;

/// Streaming `.edtrc` writer: header on construction, one record per
/// `write()`, end marker on `finish()` (idempotent; also runs at
/// destruction). Records must arrive cycle-ordered, as in the text form.
class BinaryTraceWriter {
 public:
  explicit BinaryTraceWriter(std::ostream& out);
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void write(const TraceRecord& r);
  void finish();

 private:
  std::ostream& out_;
  std::uint64_t prev_cycle_ = 0;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// Streaming `.edtrc` reader: validates the header on construction,
/// then yields one record per `next()` until the end marker.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(std::istream& in);

  /// Fill `r` with the next record; false once the end marker is seen.
  /// Throws `edsim::Error{kTraceFormat}` on corrupt or truncated input.
  bool next(TraceRecord& r);

  std::uint64_t records_read() const { return count_; }

 private:
  std::uint8_t read_byte(const char* what);

  std::istream& in_;
  std::uint64_t prev_cycle_ = 0;
  std::uint64_t count_ = 0;
  bool done_ = false;
};

/// Whole-trace binary round-trip helpers over the streaming classes.
void write_trace_binary(std::ostream& out, const std::vector<TraceRecord>& trace);
std::vector<TraceRecord> parse_trace_binary(std::istream& in);
std::vector<TraceRecord> load_trace_file_binary(const std::string& path);
void save_trace_file_binary(const std::string& path,
                            const std::vector<TraceRecord>& trace);

/// True when the file starts with the `.edtrc` magic.
bool is_binary_trace_file(const std::string& path);

/// Load a trace from `path`, auto-detecting text vs binary by magic.
std::vector<TraceRecord> load_trace_auto(const std::string& path);

}  // namespace edsim::clients
