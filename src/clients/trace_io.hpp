#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "clients/client.hpp"

namespace edsim::clients {

/// Plain-text trace format, one record per line:
///
///     <cycle> <R|W> <byte-address>
///
/// `cycle` is the earliest issue cycle (monotonically non-decreasing),
/// the address may be decimal or 0x-prefixed hex. Blank lines and lines
/// starting with '#' are ignored.
///
/// Example:
///
///     # scanout burst
///     0    R 0x0
///     4    R 0x80
///     120  W 4096
std::vector<TraceRecord> parse_trace(std::istream& in);

/// Parse from a string (convenience for tests and embedded demos).
std::vector<TraceRecord> parse_trace_text(const std::string& text);

/// Load from a file; throws ConfigError when the file cannot be opened
/// or a line does not parse.
std::vector<TraceRecord> load_trace_file(const std::string& path);

/// Write records back out in the same format (round-trip capable).
void write_trace(std::ostream& out, const std::vector<TraceRecord>& trace);

}  // namespace edsim::clients
