#include "clients/strided_gen.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/snapshot.hpp"

namespace edsim::clients {

const char* to_string(StridePattern p) {
  switch (p) {
    case StridePattern::kRowMajor: return "row-major";
    case StridePattern::kColumnMajor: return "column-major";
    case StridePattern::kTiled: return "tiled";
  }
  return "?";
}

SimdStridedClient::SimdStridedClient(unsigned id, std::string name,
                                     const Params& p)
    : Client(id, std::move(name)), p_(p) {
  require(p_.burst_bytes > 0, "simd strided client: burst_bytes must be > 0");
  require(p_.width_bytes > 0 && p_.height > 0,
          "simd strided client: surface must be non-empty");
  require(p_.width_bytes % p_.burst_bytes == 0,
          "simd strided client: burst must divide the surface width");
  if (p_.pitch_bytes == 0) p_.pitch_bytes = p_.width_bytes;
  require(p_.pitch_bytes >= p_.width_bytes,
          "simd strided client: pitch shorter than the surface width");
  if (p_.pattern == StridePattern::kTiled) {
    require(p_.tile_width_bytes > 0 && p_.tile_height > 0,
            "simd strided client: tiles must be non-empty");
    require(p_.tile_width_bytes % p_.burst_bytes == 0,
            "simd strided client: burst must divide the tile width");
    require(p_.width_bytes % p_.tile_width_bytes == 0,
            "simd strided client: tile width must divide the surface width");
    require(p_.height % p_.tile_height == 0,
            "simd strided client: tile height must divide the surface height");
  }
  per_pass_ = static_cast<std::uint64_t>(p_.width_bytes / p_.burst_bytes) *
              p_.height;
}

std::uint64_t SimdStridedClient::address_of(std::uint64_t index) const {
  const std::uint64_t k = index % per_pass_;
  const std::uint64_t bursts_per_row = p_.width_bytes / p_.burst_bytes;
  std::uint64_t row = 0;
  std::uint64_t col = 0;  // in bursts
  switch (p_.pattern) {
    case StridePattern::kRowMajor:
      row = k / bursts_per_row;
      col = k % bursts_per_row;
      break;
    case StridePattern::kColumnMajor:
      row = k % p_.height;
      col = k / p_.height;
      break;
    case StridePattern::kTiled: {
      const std::uint64_t tile_cols = p_.tile_width_bytes / p_.burst_bytes;
      const std::uint64_t bursts_per_tile = tile_cols * p_.tile_height;
      const std::uint64_t tiles_per_row = p_.width_bytes / p_.tile_width_bytes;
      const std::uint64_t tile = k / bursts_per_tile;
      const std::uint64_t within = k % bursts_per_tile;
      const std::uint64_t tile_row = tile / tiles_per_row;
      const std::uint64_t tile_col = tile % tiles_per_row;
      row = tile_row * p_.tile_height + within / tile_cols;
      col = tile_col * tile_cols + within % tile_cols;
      break;
    }
  }
  return p_.base + row * p_.pitch_bytes +
         col * static_cast<std::uint64_t>(p_.burst_bytes);
}

bool SimdStridedClient::has_request(std::uint64_t cycle) const {
  return !finished() && cycle >= next_allowed_;
}

std::uint64_t SimdStridedClient::next_request_cycle(std::uint64_t now) const {
  if (finished()) return dram::kNeverCycle;
  return std::max(now, next_allowed_);
}

std::uint64_t SimdStridedClient::pending_run_length(std::uint64_t now) const {
  if (finished() || now < next_allowed_) return 0;
  if (p_.period_cycles > 1) return 1;  // pacing lapses after each accept
  return p_.total_requests == 0 ? dram::kNeverCycle
                                : p_.total_requests - issued_;
}

dram::Request SimdStridedClient::make_request(std::uint64_t cycle) {
  dram::Request r;
  r.type = p_.type;
  r.addr = address_of(issued_);
  r.tag = issued_;
  ++issued_;
  next_allowed_ = cycle + (p_.period_cycles ? p_.period_cycles : 1);
  return r;
}

bool SimdStridedClient::finished() const {
  return p_.total_requests != 0 && issued_ >= p_.total_requests;
}

void SimdStridedClient::save_state(SnapshotWriter& w) const {
  w.u64(issued_);
  w.u64(next_allowed_);
}

void SimdStridedClient::load_state(SnapshotReader& r) {
  issued_ = r.u64();
  next_allowed_ = r.u64();
}

std::shared_ptr<const CompiledTrace> compile_simd_strided(
    const SimdStridedClient::Params& p, std::uint64_t max_requests) {
  // Drive a live client, recording the (addr, type, tag) sequence — a pure
  // function of the issue index — with the params' kAfterAccept pacing
  // (the compile_stream / compile_random recipe).
  const std::uint64_t n =
      p.total_requests != 0 ? p.total_requests : max_requests;
  require(n > 0,
          "compile client: endless params need a max_requests budget > 0");
  const std::uint64_t gap = p.period_cycles ? p.period_cycles : 1;
  SimdStridedClient client(0, "compile", p);
  CompiledTraceBuilder b(0);
  b.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const dram::Request req = client.make_request(0);
    CompiledRecord r;
    r.addr = req.addr;
    r.type = req.type;
    r.tag = req.tag;
    r.pacing = PacingKind::kAfterAccept;
    r.param = gap;
    b.add(r);
  }
  return b.build();
}

std::uint64_t compile_key(const SimdStridedClient::Params& p,
                          std::uint64_t max_requests) {
  ContentHasher h;
  h.mix(std::uint64_t{4})  // client-kind discriminator (1..3 taken)
      .mix(p.base)
      .mix(p.width_bytes)
      .mix(p.height)
      .mix(p.pitch_bytes)
      .mix(p.burst_bytes)
      .mix(p.tile_width_bytes)
      .mix(p.tile_height)
      .mix(static_cast<unsigned>(p.pattern))
      .mix(p.type == dram::AccessType::kWrite)
      .mix(p.period_cycles)
      .mix(p.total_requests)
      .mix(max_requests);
  return h.digest();
}

}  // namespace edsim::clients
