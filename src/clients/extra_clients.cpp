#include "clients/extra_clients.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/snapshot.hpp"

namespace edsim::clients {

PointerChaseClient::PointerChaseClient(unsigned id, std::string name,
                                       const Params& p)
    : Client(id, std::move(name)), p_(p), rng_(p.seed) {
  require(p_.burst_bytes > 0, "pointer chase: burst_bytes must be > 0");
  require(p_.length >= p_.burst_bytes,
          "pointer chase: region shorter than one access");
}

bool PointerChaseClient::has_request(std::uint64_t cycle) const {
  return !finished() && !outstanding_ && cycle >= ready_at_;
}

std::uint64_t PointerChaseClient::next_request_cycle(std::uint64_t now) const {
  // While a load is outstanding the client is completion-blocked; the
  // memory system bounds that skip by the controller's in-flight events,
  // so "never" is safe here.
  if (finished() || outstanding_) return dram::kNeverCycle;
  return std::max(now, ready_at_);
}

dram::Request PointerChaseClient::make_request(std::uint64_t /*cycle*/) {
  dram::Request r;
  r.type = dram::AccessType::kRead;
  const std::uint64_t slots = p_.length / p_.burst_bytes;
  r.addr = p_.base + rng_.next_below(slots) * p_.burst_bytes;
  r.tag = issued_;
  ++issued_;
  outstanding_ = true;
  return r;
}

void PointerChaseClient::notify_complete(const dram::Request& /*req*/,
                                         std::uint64_t cycle) {
  outstanding_ = false;
  ready_at_ = cycle + p_.think_cycles;
}

bool PointerChaseClient::finished() const {
  return p_.total_requests != 0 && issued_ >= p_.total_requests &&
         !outstanding_;
}

void PointerChaseClient::save_state(SnapshotWriter& w) const {
  rng_.save(w);
  w.boolean(outstanding_);
  w.u64(ready_at_);
  w.u64(issued_);
}

void PointerChaseClient::load_state(SnapshotReader& r) {
  rng_.load(r);
  outstanding_ = r.boolean();
  ready_at_ = r.u64();
  issued_ = r.u64();
}

BurstyClient::BurstyClient(unsigned id, std::string name, const Params& p)
    : Client(id, std::move(name)), p_(p), rng_(p.seed),
      left_in_burst_(p.on_requests) {
  require(p_.burst_bytes > 0, "bursty: burst_bytes must be > 0");
  require(p_.length >= p_.burst_bytes, "bursty: region too small");
  require(p_.on_requests >= 1, "bursty: on_requests must be >= 1");
}

bool BurstyClient::has_request(std::uint64_t cycle) const {
  return !finished() && cycle >= next_burst_at_;
}

std::uint64_t BurstyClient::next_request_cycle(std::uint64_t now) const {
  if (finished()) return dram::kNeverCycle;
  return std::max(now, next_burst_at_);
}

dram::Request BurstyClient::make_request(std::uint64_t cycle) {
  dram::Request r;
  r.type = p_.type;
  r.addr = p_.base + pos_;
  r.tag = issued_;
  pos_ += p_.burst_bytes;
  if (pos_ + p_.burst_bytes > p_.length) pos_ = 0;
  ++issued_;
  if (--left_in_burst_ == 0) {
    left_in_burst_ = p_.on_requests;
    std::uint64_t gap = p_.off_cycles;
    if (p_.randomize_gap && p_.off_cycles > 0) {
      gap = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(
                 rng_.next_exponential(static_cast<double>(p_.off_cycles)))));
    }
    next_burst_at_ = cycle + gap;
  }
  return r;
}

bool BurstyClient::finished() const {
  return p_.total_requests != 0 && issued_ >= p_.total_requests;
}

void BurstyClient::save_state(SnapshotWriter& w) const {
  rng_.save(w);
  w.u64(pos_);
  w.u32(left_in_burst_);
  w.u64(next_burst_at_);
  w.u64(issued_);
}

void BurstyClient::load_state(SnapshotReader& r) {
  rng_.load(r);
  pos_ = r.u64();
  left_in_burst_ = r.u32();
  next_burst_at_ = r.u64();
  issued_ = r.u64();
}

}  // namespace edsim::clients
