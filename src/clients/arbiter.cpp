#include "clients/arbiter.hpp"

#include "common/error.hpp"
#include "common/snapshot.hpp"

namespace edsim::clients {

std::unique_ptr<Arbiter> Arbiter::make(ArbiterKind kind,
                                       std::vector<double> weights) {
  switch (kind) {
    case ArbiterKind::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>();
    case ArbiterKind::kFixedPriority:
      return std::make_unique<FixedPriorityArbiter>();
    case ArbiterKind::kWeighted:
      return std::make_unique<WeightedArbiter>(std::move(weights));
  }
  return std::make_unique<RoundRobinArbiter>();
}

std::size_t RoundRobinArbiter::pick(const std::vector<bool>& ready) {
  const std::size_t n = ready.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (next_ + k) % n;
    if (ready[i]) {
      next_ = (i + 1) % n;
      return i;
    }
  }
  return kNone;
}

void RoundRobinArbiter::save(SnapshotWriter& w) const { w.u64(next_); }

void RoundRobinArbiter::load(SnapshotReader& r) {
  next_ = static_cast<std::size_t>(r.u64());
}

std::size_t FixedPriorityArbiter::pick(const std::vector<bool>& ready) {
  for (std::size_t i = 0; i < ready.size(); ++i)
    if (ready[i]) return i;
  return kNone;
}

WeightedArbiter::WeightedArbiter(std::vector<double> weights)
    : weights_(std::move(weights)), credit_(weights_.size(), 0.0) {
  require(!weights_.empty(), "weighted arbiter: need at least one weight");
  double sum = 0.0;
  for (double w : weights_) {
    require(w > 0.0, "weighted arbiter: weights must be positive");
    sum += w;
  }
  for (double& w : weights_) w /= sum;  // normalize to shares
}

std::size_t WeightedArbiter::pick(const std::vector<bool>& ready) {
  require(ready.size() == weights_.size(),
          "weighted arbiter: ready vector size mismatch");
  std::size_t best = kNone;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (!ready[i]) continue;
    if (best == kNone || credit_[i] > credit_[best]) best = i;
  }
  return best;
}

void WeightedArbiter::granted(std::size_t index, std::uint64_t bytes) {
  require(index < weights_.size(), "weighted arbiter: bad grant index");
  // Everyone accrues by weight; the winner pays the transferred bytes.
  for (std::size_t i = 0; i < weights_.size(); ++i)
    credit_[i] += weights_[i] * static_cast<double>(bytes);
  credit_[index] -= static_cast<double>(bytes);
}

void WeightedArbiter::save(SnapshotWriter& w) const {
  for (const double c : credit_) w.f64(c);
}

void WeightedArbiter::load(SnapshotReader& r) {
  for (double& c : credit_) c = r.f64();
}

}  // namespace edsim::clients
