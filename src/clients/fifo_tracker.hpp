#pragma once

#include <cstdint>

#include "common/snapshot.hpp"
#include "common/stats.hpp"

namespace edsim::clients {

/// Sizes the rate-decoupling FIFO a client needs (§3: "minimize the
/// latency for the memory clients and thus minimize the necessary FIFO
/// depth").
///
/// Model: a read client consumes data at a steady rate; requests are
/// prefetched ahead of consumption. The FIFO must hold everything
/// requested-but-not-yet-consumed, so the required depth is the peak of
/// the in-flight byte count plus one burst of slack.
class FifoTracker {
 public:
  explicit FifoTracker(unsigned burst_bytes) : burst_bytes_(burst_bytes) {}

  void on_issue() { outstanding_ += burst_bytes_; }
  void on_complete() {
    if (outstanding_ >= burst_bytes_) outstanding_ -= burst_bytes_;
  }
  void sample() {
    if (outstanding_ > peak_) peak_ = outstanding_;
    occupancy_.add(static_cast<double>(outstanding_));
  }

  /// Bulk credit for `k` cycles in which outstanding_ did not change —
  /// bit-identical to calling sample() k times (fast-forward path).
  void sample_repeated(std::uint64_t k) {
    if (k == 0) return;
    if (outstanding_ > peak_) peak_ = outstanding_;
    occupancy_.add_repeated(static_cast<double>(outstanding_), k);
  }

  std::uint64_t outstanding_bytes() const { return outstanding_; }
  /// Required FIFO depth in bytes: peak in-flight plus one burst of slack.
  std::uint64_t required_depth_bytes() const { return peak_ + burst_bytes_; }
  const Accumulator& occupancy() const { return occupancy_; }

  /// Start a fresh measurement window: the in-flight count carries over
  /// (those bytes are real), the peak re-anchors on it and the occupancy
  /// history is dropped.
  void reset_measurement() {
    peak_ = outstanding_;
    occupancy_ = Accumulator{};
  }

  void save(SnapshotWriter& w) const {
    w.u64(outstanding_);
    w.u64(peak_);
    occupancy_.save(w);
  }
  void load(SnapshotReader& r) {
    outstanding_ = r.u64();
    peak_ = r.u64();
    occupancy_.load(r);
  }

 private:
  unsigned burst_bytes_;
  std::uint64_t outstanding_ = 0;
  std::uint64_t peak_ = 0;
  Accumulator occupancy_;
};

}  // namespace edsim::clients
