#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clients/client.hpp"

namespace edsim::clients {

/// How a compiled record becomes eligible for issue, and what accepting
/// it does to the replay pacing state. Four kinds cover every generator
/// client in the tree:
///
/// * `kAtCycle`    — eligible at an absolute cycle (trace files; the
///                   `TraceClient` contract). No post-accept state.
/// * `kAfterAccept`— eligible when the *previous* accept is at least
///                   `param` cycles old (`StreamClient`/`StridedClient`/
///                   `RandomClient` pacing: `next_allowed = accept + gap`).
/// * `kPacedClock` — eligible when a free-running paced clock has
///                   matured; accepting advances it by
///                   `pclock = max(pclock + param, accept)` (the MPEG2
///                   motion-compensation block pacing).
/// * `kImmediate`  — always eligible once its predecessor issued
///                   (back-to-back rows inside an MC block fetch).
enum class PacingKind : std::uint8_t {
  kAtCycle = 0,
  kAfterAccept = 1,
  kPacedClock = 2,
  kImmediate = 3,
};

/// One decoded arena record. `param` is the absolute cycle (kAtCycle),
/// the post-accept gap (kAfterAccept), the paced-clock period
/// (kPacedClock), or unused (kImmediate).
struct CompiledRecord {
  std::uint64_t addr = 0;
  dram::AccessType type = dram::AccessType::kRead;
  std::uint64_t tag = 0;
  PacingKind pacing = PacingKind::kAtCycle;
  std::uint64_t param = 0;
};

/// A compiled workload: an immutable, shareable arena of varint/delta
/// encoded records. Compile once, replay from any number of clients,
/// sweep points, trials, and threads concurrently — the arena is never
/// written after `CompiledTraceBuilder::build()`, so sharing is free and
/// race-free by construction.
///
/// Arena layout (per record, byte-packed):
///
///     flags      1 byte   bit0 = write, bits1-2 = PacingKind,
///                          bit3 = explicit tag follows
///     param      varint   kAtCycle: delta from previous kAtCycle record
///                          kAfterAccept/kPacedClock: gap / period
///                          kImmediate: absent
///     addr       varint   absolute byte address
///     tag        varint   only when bit3 set; otherwise tag = index
class CompiledTrace {
 public:
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Initial `kAfterAccept` gate (e.g. `StreamClient::Params::start_cycle`).
  std::uint64_t start_gate() const { return start_gate_; }
  /// Bytes held by the encoded arena (diagnostics / cache accounting).
  std::size_t arena_bytes() const { return arena_.size(); }
  /// Hash of the full encoded content — stable across processes.
  std::uint64_t content_hash() const { return hash_; }

  /// Zero-copy streaming decoder over the arena. Cheap to construct and
  /// rewind; holds the current record decoded.
  class Cursor {
   public:
    explicit Cursor(const CompiledTrace& t) : t_(&t) { rewind(); }

    bool at_end() const { return idx_ >= t_->count_; }
    std::size_t index() const { return idx_; }
    /// Only valid when !at_end().
    const CompiledRecord& record() const { return rec_; }

    void advance() {
      ++idx_;
      if (idx_ < t_->count_) decode();
    }

    void rewind() {
      idx_ = 0;
      off_ = 0;
      prev_cycle_ = 0;
      if (t_->count_ > 0) decode();
    }

   private:
    void decode();

    const CompiledTrace* t_;
    std::size_t idx_ = 0;
    std::size_t off_ = 0;          // byte offset of the *next* undecoded record
    std::uint64_t prev_cycle_ = 0; // kAtCycle delta accumulator
    CompiledRecord rec_;
  };

  /// Decode the whole arena back to flat records (tests, exports).
  std::vector<CompiledRecord> decode_all() const;

 private:
  friend class CompiledTraceBuilder;
  CompiledTrace() = default;

  std::vector<std::uint8_t> arena_;
  std::size_t count_ = 0;
  std::uint64_t start_gate_ = 0;
  std::uint64_t hash_ = 0;
};

/// Builds a CompiledTrace append-only; `build()` seals it behind a
/// shared_ptr-to-const. kAtCycle records must be added in non-decreasing
/// cycle order (the delta encoding and the replay contract require it).
class CompiledTraceBuilder {
 public:
  explicit CompiledTraceBuilder(std::uint64_t start_gate = 0);

  /// Pre-size the arena for ~n records (kills element-by-element growth).
  void reserve(std::size_t n);

  void add(const CompiledRecord& r);
  std::size_t size() const { return trace_->count_; }

  std::shared_ptr<const CompiledTrace> build();

 private:
  std::shared_ptr<CompiledTrace> trace_;
  std::uint64_t prev_cycle_ = 0;
  bool built_ = false;
};

/// Compile an explicit trace (the text/binary file data model) into an
/// arena: kAtCycle pacing, addresses aligned down to `burst_bytes`, tag =
/// record index — exactly the `TraceClient` behaviour, so replay is
/// bit-identical to constructing a TraceClient from the same records.
std::shared_ptr<const CompiledTrace> compile_trace_records(
    const std::vector<TraceRecord>& records, unsigned burst_bytes);

/// Compile generator clients by driving a real instance of the client and
/// capturing its (address, type, tag) sequence — which for these client
/// types depends only on the issue index, never on issue cycles — plus
/// the pacing rule from the params. For endless params
/// (total_requests == 0) `max_requests` bounds the compiled prefix and
/// must be > 0; callers replaying a window of W cycles need at least
/// W / max(1, period) + 2 records for the prefix to be inexhaustible
/// within the window.
std::shared_ptr<const CompiledTrace> compile_stream(
    const StreamClient::Params& p, std::uint64_t max_requests = 0);
std::shared_ptr<const CompiledTrace> compile_strided(
    const StridedClient::Params& p, std::uint64_t max_requests = 0);
std::shared_ptr<const CompiledTrace> compile_random(
    const RandomClient::Params& p, std::uint64_t max_requests = 0);

/// Content-hash keys for the compile results above (used by
/// WorkloadCache callers): two equal keys compile to identical arenas.
std::uint64_t compile_key(const StreamClient::Params& p,
                          std::uint64_t max_requests);
std::uint64_t compile_key(const StridedClient::Params& p,
                          std::uint64_t max_requests);
std::uint64_t compile_key(const RandomClient::Params& p,
                          std::uint64_t max_requests);

/// Replays a shared CompiledTrace arena. Zero-copy: any number of
/// ArenaReplayClients (across sweep points, trials, and threads) share
/// one immutable arena; per-client state is just a cursor plus two
/// pacing registers. Replay is bit-identical to the generating client
/// under any backpressure and in both per-cycle and fast-forward runs.
class ArenaReplayClient : public Client {
 public:
  ArenaReplayClient(unsigned id, std::string name,
                    std::shared_ptr<const CompiledTrace> trace);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  std::uint64_t pending_run_length(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;

  /// Rewind to the first record and reset the pacing registers — the
  /// arena itself is immutable and stays shared.
  void reset();

  /// Snapshot state: the arena content hash (validated on load — the
  /// restore recipe must hand the client the same compiled workload),
  /// the cursor index (the seek re-decodes from the front; the arena is
  /// the source of truth) and the two pacing registers.
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  const std::shared_ptr<const CompiledTrace>& trace() const { return trace_; }
  std::size_t position() const { return cursor_.index(); }

 private:
  std::shared_ptr<const CompiledTrace> trace_;
  CompiledTrace::Cursor cursor_;
  std::uint64_t gate_ = 0;    // kAfterAccept state
  std::uint64_t pclock_ = 0;  // kPacedClock state
};

/// File-backed trace client. The backing file is parsed and compiled
/// exactly once, in the constructor; every "copy" (the sharing
/// constructor) reuses the same immutable arena and `reset()` just
/// rewinds the cursor — no re-parse, no re-read, ever. Text and binary
/// (`.edtrc`) files are auto-detected by magic.
class TraceFileClient final : public ArenaReplayClient {
 public:
  /// Parse + compile `path` once. Addresses are aligned down to
  /// `burst_bytes` at compile time (the TraceClient contract).
  TraceFileClient(unsigned id, std::string name, const std::string& path,
                  unsigned burst_bytes);

  /// Share an already-compiled arena (the "copy" path: zero parse cost).
  TraceFileClient(unsigned id, std::string name,
                  std::shared_ptr<const CompiledTrace> trace);
};

}  // namespace edsim::clients
