#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "clients/client.hpp"
#include "clients/compiled_trace.hpp"

namespace edsim::clients {

/// How a SIMD-style client sweeps a 2-D surface (Sim-D's stride
/// generator): the three access orders that separate GPU/DSP kernels'
/// DRAM behaviour — row-major streams are page-friendly, column-major
/// sweeps are the page-miss worst case, tiled walks sit between.
enum class StridePattern : std::uint8_t {
  kRowMajor = 0,    ///< scanline order: bursts walk each surface row
  kColumnMajor = 1, ///< transpose order: one burst per row, column first
  kTiled = 2,       ///< tile-by-tile, row-major within each tile
};

const char* to_string(StridePattern p);

/// GPU/DSP workgroup access generator over a pitched 2-D surface.
/// The address sequence is a pure function of the issue index (never of
/// issue cycles), which is what makes the client compilable into a PR 5
/// arena with bit-identical replay under any backpressure.
class SimdStridedClient final : public Client {
 public:
  struct Params {
    std::uint64_t base = 0;
    unsigned width_bytes = 4096;      ///< surface row length (payload)
    unsigned height = 64;             ///< surface rows
    unsigned pitch_bytes = 0;         ///< row-to-row distance; 0 = packed
    unsigned burst_bytes = 32;        ///< one access; must divide width
    unsigned tile_width_bytes = 256;  ///< kTiled: must divide width
    unsigned tile_height = 8;         ///< kTiled: must divide height
    StridePattern pattern = StridePattern::kRowMajor;
    dram::AccessType type = dram::AccessType::kRead;
    unsigned period_cycles = 0;       ///< min cycles between requests
    std::uint64_t total_requests = 0; ///< 0 = endless (re-sweeps forever)
  };

  SimdStridedClient(unsigned id, std::string name, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  std::uint64_t pending_run_length(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  /// Byte address of the index-th access (pure; exposed for tests).
  std::uint64_t address_of(std::uint64_t index) const;
  /// Accesses in one full sweep of the surface.
  std::uint64_t accesses_per_pass() const { return per_pass_; }

 private:
  Params p_;
  std::uint64_t per_pass_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t next_allowed_ = 0;
};

/// Compile a strided sweep into a shared arena (drive-the-client capture,
/// kAfterAccept pacing — the same recipe as compile_stream/compile_random).
std::shared_ptr<const CompiledTrace> compile_simd_strided(
    const SimdStridedClient::Params& p, std::uint64_t max_requests = 0);

/// Content-hash cache key for compile_simd_strided (WorkloadCache).
std::uint64_t compile_key(const SimdStridedClient::Params& p,
                          std::uint64_t max_requests);

}  // namespace edsim::clients
