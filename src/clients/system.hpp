#pragma once

#include <memory>
#include <string>
#include <vector>

#include "clients/arbiter.hpp"
#include "clients/client.hpp"
#include "clients/fifo_tracker.hpp"
#include "dram/controller.hpp"

namespace edsim::clients {

/// Front end tying N memory clients to one DRAM channel through an
/// arbiter: the complete "memory system" of the paper's §3/§4 discussion.
class MemorySystem {
 public:
  MemorySystem(const dram::DramConfig& cfg, ArbiterKind arbiter,
               std::vector<double> weights = {});

  /// Clients must be added before the first run() call.
  Client& add_client(std::unique_ptr<Client> client);

  /// Advance `cycles` controller cycles.
  void run(std::uint64_t cycles);

  /// Run until every client is finished and the channel drained, with a
  /// safety bound.
  void run_to_completion(std::uint64_t max_cycles = 50'000'000);

  dram::Controller& controller() { return controller_; }
  const dram::Controller& controller() const { return controller_; }

  std::size_t client_count() const { return clients_.size(); }
  const Client& client(std::size_t i) const { return *clients_[i]; }
  const ClientStats& client_stats(std::size_t i) const { return stats_[i]; }
  const FifoTracker& fifo(std::size_t i) const { return fifos_[i]; }

  /// Aggregate achieved bandwidth across all clients over the run window.
  Bandwidth aggregate_bandwidth() const;
  /// Achieved / peak.
  double bandwidth_efficiency() const;

  /// Disable/enable the event-driven fast path (on by default). The fast
  /// path is bit-identical to per-cycle stepping; turning it off exists
  /// for the equivalence tests and for debugging with per-cycle traces.
  void set_fast_forward(bool on) { fast_forward_ = on; }

  /// Disable/enable the dense-traffic burst path (on by default): when the
  /// controller queue is full and every ready client promises persistent
  /// demand (pending_run_length), front-end steps between controller
  /// events are pure stall/sample bookkeeping and are credited in bulk
  /// while the controller advances via its own burst-issue fast path.
  /// Bit-identical to per-cycle stepping; off is the differential
  /// reference for the equivalence and fuzz suites.
  void set_burst_issue(bool on) {
    burst_issue_ = on;
    controller_.set_burst_issue(on);
  }
  bool burst_issue() const { return burst_issue_; }

  /// Attach observability probes to the channel (nullptr detaches); see
  /// dram::Controller::attach_telemetry. The front end's bulk skips drive
  /// the same probe stream as per-cycle stepping.
  void attach_telemetry(dram::TelemetryHooks* hooks) {
    controller_.attach_telemetry(hooks);
  }

  /// Serialize the complete dynamic state — channel, arbiter, every
  /// client's generator registers, per-client stats / FIFO trackers /
  /// in-flight counts — into a sealed snapshot envelope ("EDSS" magic,
  /// version byte, payload checksum). Attached observers (command log,
  /// telemetry, reliability hooks) are NOT included: snapshot the
  /// ReliabilityManager alongside and re-attach live observers before
  /// restoring. Continuing from a restored snapshot is bit-identical to
  /// never having snapshotted.
  std::vector<std::uint8_t> save_snapshot() const;

  /// Restore from save_snapshot() output. The receiving system must be
  /// built from the same recipe (same DramConfig, arbiter kind/weights,
  /// client roster over the same compiled workloads); re-attach
  /// reliability hooks BEFORE calling this. Corrupt, truncated, or
  /// mismatched input throws Error{kSnapshotFormat} and never invokes
  /// undefined behaviour.
  void restore_snapshot(const std::uint8_t* data, std::size_t size);
  void restore_snapshot(const std::vector<std::uint8_t>& blob) {
    restore_snapshot(blob.data(), blob.size());
  }

  /// Unsealed variants for embedding this system in a larger snapshot
  /// stream (multi-system harnesses append their own sections).
  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);

  /// Start a fresh measurement window at the current cycle: controller
  /// stats, per-client stats and FIFO peaks/occupancy reset; simulation
  /// state (queues, in-flight requests, client cursors) is untouched.
  /// The checkpoint-and-fan-out evaluator calls this after warm-up.
  void reset_measurement();

  /// Pause / resume every client (SMARTS-style sampling): while paused no
  /// client issues, so once in-flight traffic drains the event-driven fast
  /// path leaps over the stretch in one bulk credit. Completions still
  /// deliver and sampling still runs — pausing changes which requests
  /// exist, so it is a sampling approximation, not a bit-identical mode.
  void set_clients_paused(bool on) { clients_paused_ = on; }
  bool clients_paused() const { return clients_paused_; }

 private:
  void step();
  /// step()'s delivery block, shared with dense_stretch: drain retired
  /// requests and credit each to its client at `cycle`.
  void deliver_completions(std::uint64_t cycle);
  /// Fast-forward: if no client can issue, no completion is pending and
  /// the controller sees no event, bulk-credit the quiet stretch up to
  /// `end` (bit-identical to stepping through it cycle by cycle).
  void skip_quiet_stretch(std::uint64_t end);
  /// Dense traffic: the saturated dual of skip_quiet_stretch. While
  /// demand keeps the queue full, the loop executes each boundary cycle's
  /// step inline — delivery, then at most one arbitration grant — and
  /// bulk-credits the stall/sample-only cycles between controller events,
  /// never returning to per-cycle step() (bit-identical).
  void dense_stretch(std::uint64_t end);

  dram::Controller controller_;
  std::unique_ptr<Arbiter> arbiter_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<ClientStats> stats_;
  std::vector<FifoTracker> fifos_;
  std::vector<unsigned> outstanding_;  // in-flight per client
  std::vector<dram::Request> completed_scratch_;  // reused drain buffer
  std::vector<bool> ready_;                       // reused arbitration mask
  bool fast_forward_ = true;
  bool burst_issue_ = true;
  bool clients_paused_ = false;
};

}  // namespace edsim::clients
