#pragma once

#include <memory>
#include <string>
#include <vector>

#include "clients/arbiter.hpp"
#include "clients/client.hpp"
#include "clients/fifo_tracker.hpp"
#include "dram/controller.hpp"

namespace edsim::clients {

/// Front end tying N memory clients to one DRAM channel through an
/// arbiter: the complete "memory system" of the paper's §3/§4 discussion.
class MemorySystem {
 public:
  MemorySystem(const dram::DramConfig& cfg, ArbiterKind arbiter,
               std::vector<double> weights = {});

  /// Clients must be added before the first run() call.
  Client& add_client(std::unique_ptr<Client> client);

  /// Advance `cycles` controller cycles.
  void run(std::uint64_t cycles);

  /// Run until every client is finished and the channel drained, with a
  /// safety bound.
  void run_to_completion(std::uint64_t max_cycles = 50'000'000);

  dram::Controller& controller() { return controller_; }
  const dram::Controller& controller() const { return controller_; }

  std::size_t client_count() const { return clients_.size(); }
  const Client& client(std::size_t i) const { return *clients_[i]; }
  const ClientStats& client_stats(std::size_t i) const { return stats_[i]; }
  const FifoTracker& fifo(std::size_t i) const { return fifos_[i]; }

  /// Aggregate achieved bandwidth across all clients over the run window.
  Bandwidth aggregate_bandwidth() const;
  /// Achieved / peak.
  double bandwidth_efficiency() const;

  /// Disable/enable the event-driven fast path (on by default). The fast
  /// path is bit-identical to per-cycle stepping; turning it off exists
  /// for the equivalence tests and for debugging with per-cycle traces.
  void set_fast_forward(bool on) { fast_forward_ = on; }

  /// Attach observability probes to the channel (nullptr detaches); see
  /// dram::Controller::attach_telemetry. The front end's bulk skips drive
  /// the same probe stream as per-cycle stepping.
  void attach_telemetry(dram::TelemetryHooks* hooks) {
    controller_.attach_telemetry(hooks);
  }

 private:
  void step();
  /// Fast-forward: if no client can issue, no completion is pending and
  /// the controller sees no event, bulk-credit the quiet stretch up to
  /// `end` (bit-identical to stepping through it cycle by cycle).
  void skip_quiet_stretch(std::uint64_t end);

  dram::Controller controller_;
  std::unique_ptr<Arbiter> arbiter_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<ClientStats> stats_;
  std::vector<FifoTracker> fifos_;
  std::vector<unsigned> outstanding_;  // in-flight per client
  std::vector<dram::Request> completed_scratch_;  // reused drain buffer
  std::vector<bool> ready_;                       // reused arbitration mask
  bool fast_forward_ = true;
};

}  // namespace edsim::clients
