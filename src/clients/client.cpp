#include "clients/client.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/snapshot.hpp"

namespace edsim::clients {

namespace {
std::uint64_t align_down(std::uint64_t v, std::uint64_t a) {
  return v - v % a;
}
}  // namespace

// --- ClientStats ------------------------------------------------------------

void ClientStats::save(SnapshotWriter& w) const {
  w.u64(issued);
  w.u64(completed);
  w.u64(bytes);
  w.u64(stall_cycles);
  w.u64(corrected_errors);
  w.u64(data_errors);
  latency.save(w);
  outstanding.save(w);
  latency_samples.save(w);
}

void ClientStats::load(SnapshotReader& r) {
  issued = r.u64();
  completed = r.u64();
  bytes = r.u64();
  stall_cycles = r.u64();
  corrected_errors = r.u64();
  data_errors = r.u64();
  latency.load(r);
  outstanding.load(r);
  latency_samples.load(r);
}

// --- StreamClient -----------------------------------------------------------

StreamClient::StreamClient(unsigned id, std::string name, const Params& p)
    : Client(id, std::move(name)), p_(p), next_allowed_(p.start_cycle) {
  require(p_.burst_bytes > 0, "stream client: burst_bytes must be > 0");
  require(p_.length >= p_.burst_bytes,
          "stream client: region shorter than one burst");
}

bool StreamClient::has_request(std::uint64_t cycle) const {
  return !finished() && cycle >= next_allowed_;
}

std::uint64_t StreamClient::next_request_cycle(std::uint64_t now) const {
  if (finished()) return dram::kNeverCycle;
  return std::max(now, next_allowed_);
}

std::uint64_t StreamClient::pending_run_length(std::uint64_t now) const {
  if (finished() || now < next_allowed_) return 0;
  if (p_.period_cycles > 1) return 1;  // pacing lapses after each accept
  return p_.total_requests == 0 ? dram::kNeverCycle
                                : p_.total_requests - issued_;
}

dram::Request StreamClient::make_request(std::uint64_t cycle) {
  dram::Request r;
  r.type = p_.type;
  r.addr = p_.base + pos_;
  r.tag = issued_;
  pos_ += p_.burst_bytes;
  if (pos_ + p_.burst_bytes > p_.length) pos_ = 0;  // wrap
  ++issued_;
  next_allowed_ = cycle + (p_.period_cycles ? p_.period_cycles : 1);
  return r;
}

bool StreamClient::finished() const {
  return p_.total_requests != 0 && issued_ >= p_.total_requests;
}

void StreamClient::save_state(SnapshotWriter& w) const {
  w.u64(pos_);
  w.u64(issued_);
  w.u64(next_allowed_);
}

void StreamClient::load_state(SnapshotReader& r) {
  pos_ = r.u64();
  issued_ = r.u64();
  next_allowed_ = r.u64();
}

// --- StridedClient -----------------------------------------------------------

StridedClient::StridedClient(unsigned id, std::string name, const Params& p)
    : Client(id, std::move(name)), p_(p) {
  require(p_.burst_bytes > 0, "strided client: burst_bytes must be > 0");
  require(p_.stride_bytes >= p_.burst_bytes,
          "strided client: stride smaller than burst");
  require(p_.length >= p_.stride_bytes,
          "strided client: region shorter than one stride");
}

bool StridedClient::has_request(std::uint64_t cycle) const {
  return !finished() && cycle >= next_allowed_;
}

std::uint64_t StridedClient::next_request_cycle(std::uint64_t now) const {
  if (finished()) return dram::kNeverCycle;
  return std::max(now, next_allowed_);
}

std::uint64_t StridedClient::pending_run_length(std::uint64_t now) const {
  if (finished() || now < next_allowed_) return 0;
  if (p_.period_cycles > 1) return 1;
  return p_.total_requests == 0 ? dram::kNeverCycle
                                : p_.total_requests - issued_;
}

dram::Request StridedClient::make_request(std::uint64_t cycle) {
  dram::Request r;
  r.type = p_.type;
  r.addr = p_.base + offset_;
  r.tag = issued_;
  offset_ += p_.stride_bytes;
  if (offset_ + p_.burst_bytes > p_.length) {
    // Next pass starts one burst further into the stride (phase shift), so
    // the client eventually touches the whole region.
    ++lane_;
    offset_ = (lane_ * p_.burst_bytes) % p_.stride_bytes;
  }
  ++issued_;
  next_allowed_ = cycle + (p_.period_cycles ? p_.period_cycles : 1);
  return r;
}

bool StridedClient::finished() const {
  return p_.total_requests != 0 && issued_ >= p_.total_requests;
}

void StridedClient::save_state(SnapshotWriter& w) const {
  w.u64(offset_);
  w.u64(lane_);
  w.u64(issued_);
  w.u64(next_allowed_);
}

void StridedClient::load_state(SnapshotReader& r) {
  offset_ = r.u64();
  lane_ = r.u64();
  issued_ = r.u64();
  next_allowed_ = r.u64();
}

// --- RandomClient ------------------------------------------------------------

RandomClient::RandomClient(unsigned id, std::string name, const Params& p)
    : Client(id, std::move(name)), p_(p), rng_(p.seed) {
  require(p_.burst_bytes > 0, "random client: burst_bytes must be > 0");
  require(p_.length >= p_.burst_bytes,
          "random client: region shorter than one burst");
  require(p_.read_fraction >= 0.0 && p_.read_fraction <= 1.0,
          "random client: read_fraction must be in [0,1]");
}

bool RandomClient::has_request(std::uint64_t cycle) const {
  return !finished() && cycle >= next_allowed_;
}

std::uint64_t RandomClient::next_request_cycle(std::uint64_t now) const {
  if (finished()) return dram::kNeverCycle;
  return std::max(now, next_allowed_);
}

std::uint64_t RandomClient::pending_run_length(std::uint64_t now) const {
  if (finished() || now < next_allowed_) return 0;
  if (p_.period_cycles > 1) return 1;
  return p_.total_requests == 0 ? dram::kNeverCycle
                                : p_.total_requests - issued_;
}

dram::Request RandomClient::make_request(std::uint64_t cycle) {
  dram::Request r;
  r.type = rng_.next_bool(p_.read_fraction) ? dram::AccessType::kRead
                                            : dram::AccessType::kWrite;
  const std::uint64_t span = p_.length - p_.burst_bytes + 1;
  r.addr = p_.base + align_down(rng_.next_below(span), p_.burst_bytes);
  r.tag = issued_;
  ++issued_;
  next_allowed_ = cycle + (p_.period_cycles ? p_.period_cycles : 1);
  return r;
}

bool RandomClient::finished() const {
  return p_.total_requests != 0 && issued_ >= p_.total_requests;
}

void RandomClient::save_state(SnapshotWriter& w) const {
  rng_.save(w);
  w.u64(issued_);
  w.u64(next_allowed_);
}

void RandomClient::load_state(SnapshotReader& r) {
  rng_.load(r);
  issued_ = r.u64();
  next_allowed_ = r.u64();
}

// --- TraceClient -------------------------------------------------------------

TraceClient::TraceClient(unsigned id, std::string name,
                         std::vector<TraceRecord> trace, unsigned burst_bytes)
    : Client(id, std::move(name)),
      trace_(std::move(trace)),
      burst_bytes_(burst_bytes) {
  require(burst_bytes_ > 0, "trace client: burst_bytes must be > 0");
  for (std::size_t i = 1; i < trace_.size(); ++i) {
    require(trace_[i].cycle >= trace_[i - 1].cycle,
            "trace client: records must be cycle-ordered");
  }
}

bool TraceClient::has_request(std::uint64_t cycle) const {
  return pos_ < trace_.size() && cycle >= trace_[pos_].cycle;
}

std::uint64_t TraceClient::next_request_cycle(std::uint64_t now) const {
  if (pos_ >= trace_.size()) return dram::kNeverCycle;
  return std::max(now, trace_[pos_].cycle);
}

std::uint64_t TraceClient::pending_run_length(std::uint64_t now) const {
  // A trace record is pending once its cycle has passed and stays pending
  // until granted; the next record may sit arbitrarily far ahead, so only
  // one grant is ever promised.
  return (pos_ < trace_.size() && trace_[pos_].cycle <= now) ? 1 : 0;
}

dram::Request TraceClient::make_request(std::uint64_t /*cycle*/) {
  const TraceRecord& t = trace_[pos_++];
  dram::Request r;
  r.type = t.type;
  r.addr = align_down(t.addr, burst_bytes_);
  r.tag = pos_ - 1;
  return r;
}

bool TraceClient::finished() const { return pos_ >= trace_.size(); }

void TraceClient::save_state(SnapshotWriter& w) const { w.u64(pos_); }

void TraceClient::load_state(SnapshotReader& r) {
  const std::uint64_t pos = r.u64();
  if (pos > trace_.size()) r.fail("trace cursor out of range");
  pos_ = static_cast<std::size_t>(pos);
}

}  // namespace edsim::clients
