#include "clients/compiled_trace.hpp"

#include <algorithm>
#include <cassert>

#include "clients/trace_io.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/snapshot.hpp"
#include "common/varint.hpp"

namespace edsim::clients {

namespace {

constexpr std::uint8_t kFlagWrite = 0x01;
constexpr std::uint8_t kFlagPacingShift = 1;  // bits 1-2
constexpr std::uint8_t kFlagExplicitTag = 0x08;

std::uint64_t align_down(std::uint64_t v, std::uint64_t a) {
  return v - v % a;
}

}  // namespace

// --- CompiledTrace ----------------------------------------------------------

void CompiledTrace::Cursor::decode() {
  const std::uint8_t* data = t_->arena_.data();
  const std::size_t n = t_->arena_.size();
  assert(off_ < n);
  const std::uint8_t flags = data[off_++];
  rec_.type = (flags & kFlagWrite) ? dram::AccessType::kWrite
                                   : dram::AccessType::kRead;
  rec_.pacing = static_cast<PacingKind>((flags >> kFlagPacingShift) & 0x3u);
  rec_.param = 0;
  if (rec_.pacing != PacingKind::kImmediate) {
    [[maybe_unused]] const bool ok = decode_varint(data, n, off_, rec_.param);
    assert(ok);
    if (rec_.pacing == PacingKind::kAtCycle) {
      prev_cycle_ += rec_.param;  // delta -> absolute
      rec_.param = prev_cycle_;
    }
  }
  [[maybe_unused]] const bool addr_ok = decode_varint(data, n, off_, rec_.addr);
  assert(addr_ok);
  if (flags & kFlagExplicitTag) {
    [[maybe_unused]] const bool tag_ok = decode_varint(data, n, off_, rec_.tag);
    assert(tag_ok);
  } else {
    rec_.tag = idx_;
  }
}

std::vector<CompiledRecord> CompiledTrace::decode_all() const {
  std::vector<CompiledRecord> out;
  out.reserve(count_);
  for (Cursor c(*this); !c.at_end(); c.advance()) out.push_back(c.record());
  return out;
}

// --- CompiledTraceBuilder ---------------------------------------------------

CompiledTraceBuilder::CompiledTraceBuilder(std::uint64_t start_gate)
    : trace_(std::shared_ptr<CompiledTrace>(new CompiledTrace())) {
  trace_->start_gate_ = start_gate;
}

void CompiledTraceBuilder::reserve(std::size_t n) {
  // Typical record: 1 flags + 1-2 param + 2-5 addr bytes, no tag.
  trace_->arena_.reserve(n * 8);
}

void CompiledTraceBuilder::add(const CompiledRecord& r) {
  require(!built_, "compiled trace: builder already sealed");
  std::uint8_t flags = 0;
  if (r.type == dram::AccessType::kWrite) flags |= kFlagWrite;
  flags |= static_cast<std::uint8_t>(static_cast<std::uint8_t>(r.pacing)
                                     << kFlagPacingShift);
  const bool explicit_tag = r.tag != trace_->count_;
  if (explicit_tag) flags |= kFlagExplicitTag;
  trace_->arena_.push_back(flags);
  if (r.pacing != PacingKind::kImmediate) {
    std::uint64_t param = r.param;
    if (r.pacing == PacingKind::kAtCycle) {
      require(r.param >= prev_cycle_,
              "compiled trace: kAtCycle records must be cycle-ordered");
      param = r.param - prev_cycle_;
      prev_cycle_ = r.param;
    }
    encode_varint(trace_->arena_, param);
  }
  encode_varint(trace_->arena_, r.addr);
  if (explicit_tag) encode_varint(trace_->arena_, r.tag);
  ++trace_->count_;
}

std::shared_ptr<const CompiledTrace> CompiledTraceBuilder::build() {
  require(!built_, "compiled trace: builder already sealed");
  built_ = true;
  trace_->arena_.shrink_to_fit();
  ContentHasher h;
  h.mix(static_cast<std::uint64_t>(trace_->count_))
      .mix(trace_->start_gate_)
      .mix_bytes(trace_->arena_.data(), trace_->arena_.size());
  trace_->hash_ = h.digest();
  return std::const_pointer_cast<const CompiledTrace>(trace_);
}

// --- compilation ------------------------------------------------------------

std::shared_ptr<const CompiledTrace> compile_trace_records(
    const std::vector<TraceRecord>& records, unsigned burst_bytes) {
  require(burst_bytes > 0, "compile trace: burst_bytes must be > 0");
  CompiledTraceBuilder b;
  b.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& t = records[i];
    CompiledRecord r;
    r.addr = align_down(t.addr, burst_bytes);  // the TraceClient contract
    r.type = t.type;
    r.tag = i;
    r.pacing = PacingKind::kAtCycle;
    r.param = t.cycle;
    b.add(r);
  }
  return b.build();
}

namespace {

/// Drive a real generator client, capturing its (addr, type, tag)
/// sequence — which for these client types is a function of the issue
/// index only — and attach the pacing rule from the params. Replay is
/// then bit-identical to the live client under any backpressure.
template <typename ClientT, typename ParamsT>
std::shared_ptr<const CompiledTrace> compile_paced(
    const ParamsT& p, std::uint64_t start_gate, std::uint64_t max_requests) {
  const std::uint64_t n = p.total_requests != 0 ? p.total_requests
                                                : max_requests;
  require(n > 0,
          "compile client: endless params need a max_requests budget > 0");
  const std::uint64_t gap = p.period_cycles ? p.period_cycles : 1;
  ClientT client(0, "compile", p);
  CompiledTraceBuilder b(start_gate);
  b.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const dram::Request req = client.make_request(0);
    CompiledRecord r;
    r.addr = req.addr;
    r.type = req.type;
    r.tag = req.tag;
    r.pacing = PacingKind::kAfterAccept;
    r.param = gap;
    b.add(r);
  }
  return b.build();
}

}  // namespace

std::shared_ptr<const CompiledTrace> compile_stream(
    const StreamClient::Params& p, std::uint64_t max_requests) {
  return compile_paced<StreamClient>(p, p.start_cycle, max_requests);
}

std::shared_ptr<const CompiledTrace> compile_strided(
    const StridedClient::Params& p, std::uint64_t max_requests) {
  return compile_paced<StridedClient>(p, 0, max_requests);
}

std::shared_ptr<const CompiledTrace> compile_random(
    const RandomClient::Params& p, std::uint64_t max_requests) {
  return compile_paced<RandomClient>(p, 0, max_requests);
}

std::uint64_t compile_key(const StreamClient::Params& p,
                          std::uint64_t max_requests) {
  ContentHasher h;
  h.mix(std::uint64_t{1})  // client-kind discriminator
      .mix(p.base)
      .mix(p.length)
      .mix(p.burst_bytes)
      .mix(p.type == dram::AccessType::kWrite)
      .mix(p.period_cycles)
      .mix(p.total_requests)
      .mix(p.start_cycle)
      .mix(max_requests);
  return h.digest();
}

std::uint64_t compile_key(const StridedClient::Params& p,
                          std::uint64_t max_requests) {
  ContentHasher h;
  h.mix(std::uint64_t{2})
      .mix(p.base)
      .mix(p.length)
      .mix(p.burst_bytes)
      .mix(p.stride_bytes)
      .mix(p.type == dram::AccessType::kWrite)
      .mix(p.period_cycles)
      .mix(p.total_requests)
      .mix(max_requests);
  return h.digest();
}

std::uint64_t compile_key(const RandomClient::Params& p,
                          std::uint64_t max_requests) {
  ContentHasher h;
  h.mix(std::uint64_t{3})
      .mix(p.base)
      .mix(p.length)
      .mix(p.burst_bytes)
      .mix(p.read_fraction)
      .mix(p.period_cycles)
      .mix(p.total_requests)
      .mix(p.seed)
      .mix(max_requests);
  return h.digest();
}

// --- ArenaReplayClient ------------------------------------------------------

ArenaReplayClient::ArenaReplayClient(unsigned id, std::string name,
                                     std::shared_ptr<const CompiledTrace> trace)
    : Client(id, std::move(name)),
      trace_(std::move(trace)),
      cursor_((require(trace_ != nullptr,
                       "arena replay client: null compiled trace"),
               *trace_)),
      gate_(trace_->start_gate()) {}

bool ArenaReplayClient::has_request(std::uint64_t cycle) const {
  if (cursor_.at_end()) return false;
  const CompiledRecord& r = cursor_.record();
  switch (r.pacing) {
    case PacingKind::kAtCycle: return cycle >= r.param;
    case PacingKind::kAfterAccept: return cycle >= gate_;
    case PacingKind::kPacedClock: return cycle >= pclock_;
    case PacingKind::kImmediate: return true;
  }
  return false;
}

std::uint64_t ArenaReplayClient::pending_run_length(std::uint64_t now) const {
  // Readiness is monotone in `cycle` for every pacing kind, so one grant
  // is always safe to promise; the next record's eligibility depends on
  // the accept cycle, so nothing beyond that is.
  return has_request(now) ? 1 : 0;
}

std::uint64_t ArenaReplayClient::next_request_cycle(std::uint64_t now) const {
  if (cursor_.at_end()) return dram::kNeverCycle;
  const CompiledRecord& r = cursor_.record();
  switch (r.pacing) {
    case PacingKind::kAtCycle: return std::max(now, r.param);
    case PacingKind::kAfterAccept: return std::max(now, gate_);
    case PacingKind::kPacedClock: return std::max(now, pclock_);
    case PacingKind::kImmediate: return now;
  }
  return now;
}

dram::Request ArenaReplayClient::make_request(std::uint64_t cycle) {
  const CompiledRecord& r = cursor_.record();
  dram::Request req;
  req.type = r.type;
  req.addr = r.addr;
  req.tag = r.tag;
  switch (r.pacing) {
    case PacingKind::kAtCycle:
    case PacingKind::kImmediate:
      break;
    case PacingKind::kAfterAccept:
      gate_ = cycle + r.param;
      break;
    case PacingKind::kPacedClock:
      pclock_ = std::max(pclock_ + r.param, cycle);
      break;
  }
  cursor_.advance();
  return req;
}

bool ArenaReplayClient::finished() const { return cursor_.at_end(); }

void ArenaReplayClient::reset() {
  cursor_.rewind();
  gate_ = trace_->start_gate();
  pclock_ = 0;
}

void ArenaReplayClient::save_state(SnapshotWriter& w) const {
  w.u64(trace_->content_hash());
  w.u64(cursor_.index());
  w.u64(gate_);
  w.u64(pclock_);
}

void ArenaReplayClient::load_state(SnapshotReader& r) {
  if (r.u64() != trace_->content_hash()) {
    r.fail("arena replay snapshot: compiled-trace content hash mismatch");
  }
  const std::uint64_t idx = r.u64();
  if (idx > trace_->size()) r.fail("arena replay cursor out of range");
  cursor_.rewind();
  for (std::uint64_t i = 0; i < idx; ++i) cursor_.advance();
  gate_ = r.u64();
  pclock_ = r.u64();
}

// --- TraceFileClient --------------------------------------------------------

TraceFileClient::TraceFileClient(unsigned id, std::string name,
                                 const std::string& path, unsigned burst_bytes)
    : ArenaReplayClient(id, std::move(name),
                        compile_trace_records(load_trace_auto(path),
                                              burst_bytes)) {}

TraceFileClient::TraceFileClient(unsigned id, std::string name,
                                 std::shared_ptr<const CompiledTrace> trace)
    : ArenaReplayClient(id, std::move(name), std::move(trace)) {}

}  // namespace edsim::clients
