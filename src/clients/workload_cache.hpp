#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "clients/compiled_trace.hpp"

namespace edsim::clients {

/// Process-wide (or per-evaluator) cache of compiled workload arenas,
/// keyed by a content hash of (client kind, params, seed, budget) — see
/// the `compile_key` overloads. Thread-safe; the lock is NOT held while
/// a compile function runs, so concurrent sweep threads never serialize
/// behind each other's compiles. Two threads racing on the same key may
/// both compile, but compilation is pure and deterministic, so
/// first-insert-wins is safe and every caller still receives an arena
/// with identical content.
class WorkloadCache {
 public:
  using CompileFn = std::function<std::shared_ptr<const CompiledTrace>()>;

  /// Return the arena for `key`, compiling it with `compile` on a miss.
  std::shared_ptr<const CompiledTrace> get_or_compile(std::uint64_t key,
                                                      const CompileFn& compile);

  /// Lookup without compiling (nullptr on miss). Does not bump counters.
  std::shared_ptr<const CompiledTrace> find(std::uint64_t key) const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t entries() const;
  /// Total encoded bytes across all cached arenas.
  std::size_t arena_bytes() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const CompiledTrace>> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace edsim::clients
