#include "clients/trace_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/varint.hpp"

namespace edsim::clients {

namespace {

/// Remaining byte count of a seekable stream (0 when not seekable) —
/// used to pre-size record vectors so read paths never reallocate
/// element-by-element.
std::size_t remaining_bytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return 0;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) return 0;
  return static_cast<std::size_t>(end - here);
}

[[noreturn]] void throw_format(std::uint64_t record_index,
                               const std::string& what) {
  throw Error(ErrorKind::kTraceFormat, record_index, what);
}

}  // namespace

std::vector<TraceRecord> parse_trace(std::istream& in) {
  std::vector<TraceRecord> out;
  // A text record line is ~12-24 bytes; err low so we never over-reserve
  // by more than ~2x, while a dense trace still loads with one allocation.
  out.reserve(remaining_bytes(in) / 12 + 1);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::uint64_t cycle = 0;
    std::string op;
    std::string addr_str;
    if (!(ls >> cycle)) {
      // Nothing but whitespace: skip.
      bool blank = true;
      for (const char c : line) blank = blank && std::isspace(c) != 0;
      require(blank, "trace: line " + std::to_string(lineno) +
                         ": expected '<cycle> <R|W> <addr>'");
      continue;
    }
    require(static_cast<bool>(ls >> op >> addr_str),
            "trace: line " + std::to_string(lineno) + ": truncated record");
    require(op == "R" || op == "W" || op == "r" || op == "w",
            "trace: line " + std::to_string(lineno) +
                ": op must be R or W, got '" + op + "'");
    TraceRecord r;
    r.cycle = cycle;
    r.type = (op == "R" || op == "r") ? dram::AccessType::kRead
                                      : dram::AccessType::kWrite;
    try {
      r.addr = std::stoull(addr_str, nullptr, 0);  // base 0: dec or 0x hex
    } catch (const std::exception&) {
      require(false, "trace: line " + std::to_string(lineno) +
                         ": bad address '" + addr_str + "'");
    }
    require(out.empty() || r.cycle >= out.back().cycle,
            "trace: line " + std::to_string(lineno) +
                ": cycles must be non-decreasing");
    out.push_back(r);
  }
  return out;
}

std::vector<TraceRecord> parse_trace_text(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

std::vector<TraceRecord> load_trace_file(const std::string& path) {
  std::ifstream f(path);
  require(f.is_open(), "trace: cannot open '" + path + "'");
  return parse_trace(f);
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& trace) {
  for (const TraceRecord& r : trace) {
    out << r.cycle << ' '
        << (r.type == dram::AccessType::kRead ? 'R' : 'W') << " 0x"
        << std::hex << r.addr << std::dec << '\n';
  }
}

// --- binary .edtrc v2 -------------------------------------------------------

namespace {

constexpr std::uint8_t kRecordMarker = 0x01;
constexpr std::uint8_t kEndMarker = 0x00;
constexpr std::uint8_t kRecordFlagWrite = 0x01;

void put_varint(std::ostream& out, std::uint64_t v) {
  char buf[10];  // LEB128 of a u64 is at most 10 bytes
  std::size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  out.write(buf, static_cast<std::streamsize>(n));
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out) : out_(out) {
  out_.write(kBinaryTraceMagic.data(), kBinaryTraceMagic.size());
  const std::uint8_t ver[2] = {
      static_cast<std::uint8_t>(kBinaryTraceVersion & 0xffu),
      static_cast<std::uint8_t>(kBinaryTraceVersion >> 8)};
  out_.write(reinterpret_cast<const char*>(ver), 2);
}

BinaryTraceWriter::~BinaryTraceWriter() {
  if (!finished_) finish();
}

void BinaryTraceWriter::write(const TraceRecord& r) {
  require(!finished_, "binary trace writer: already finished");
  require(r.cycle >= prev_cycle_,
          "binary trace writer: cycles must be non-decreasing");
  std::uint8_t head[2] = {kRecordMarker, 0};
  if (r.type == dram::AccessType::kWrite) head[1] |= kRecordFlagWrite;
  out_.write(reinterpret_cast<const char*>(head), 2);
  put_varint(out_, r.cycle - prev_cycle_);
  put_varint(out_, r.addr);
  prev_cycle_ = r.cycle;
  ++count_;
}

void BinaryTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.put(static_cast<char>(kEndMarker));
  out_.flush();
}

BinaryTraceReader::BinaryTraceReader(std::istream& in) : in_(in) {
  std::array<char, 6> magic{};
  in_.read(magic.data(), magic.size());
  if (in_.gcount() != static_cast<std::streamsize>(magic.size()) ||
      magic != kBinaryTraceMagic) {
    throw_format(0, "binary trace: bad magic (not an .edtrc stream)");
  }
  std::uint8_t ver[2] = {0, 0};
  in_.read(reinterpret_cast<char*>(ver), 2);
  if (in_.gcount() != 2) throw_format(0, "binary trace: truncated header");
  const std::uint16_t version =
      static_cast<std::uint16_t>(ver[0] | (ver[1] << 8));
  if (version != kBinaryTraceVersion) {
    throw_format(0, "binary trace: unsupported version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kBinaryTraceVersion) + ")");
  }
}

std::uint8_t BinaryTraceReader::read_byte(const char* what) {
  const int c = in_.get();
  if (c == std::istream::traits_type::eof()) {
    throw_format(count_, std::string("binary trace: truncated ") + what);
  }
  return static_cast<std::uint8_t>(c);
}

bool BinaryTraceReader::next(TraceRecord& r) {
  if (done_) return false;
  const std::uint8_t marker = read_byte("record marker");
  if (marker == kEndMarker) {
    done_ = true;
    return false;
  }
  if (marker != kRecordMarker) {
    throw_format(count_, "binary trace: unknown record marker " +
                             std::to_string(marker));
  }
  const std::uint8_t flags = read_byte("record flags");
  if ((flags & ~kRecordFlagWrite) != 0) {
    throw_format(count_, "binary trace: reserved flag bits set");
  }
  // Inline LEB128 decode over the stream (delta, then address).
  std::uint64_t fields[2] = {0, 0};
  for (std::uint64_t& v : fields) {
    unsigned shift = 0;
    for (;;) {
      const std::uint8_t b = read_byte("varint");
      if (shift == 63 && (b & 0x7eu) != 0) {
        throw_format(count_, "binary trace: varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(b & 0x7fu) << shift;
      if ((b & 0x80u) == 0) break;
      shift += 7;
      if (shift > 63) {
        throw_format(count_, "binary trace: varint overflows 64 bits");
      }
    }
  }
  if (prev_cycle_ + fields[0] < prev_cycle_) {
    throw_format(count_, "binary trace: cycle delta overflows 64 bits");
  }
  prev_cycle_ += fields[0];
  r.cycle = prev_cycle_;
  r.addr = fields[1];
  r.type = (flags & kRecordFlagWrite) ? dram::AccessType::kWrite
                                      : dram::AccessType::kRead;
  ++count_;
  return true;
}

void write_trace_binary(std::ostream& out,
                        const std::vector<TraceRecord>& trace) {
  BinaryTraceWriter w(out);
  for (const TraceRecord& r : trace) w.write(r);
  w.finish();
}

std::vector<TraceRecord> parse_trace_binary(std::istream& in) {
  // Header is 8 bytes, each record at least 4: a safe, tight pre-size.
  const std::size_t bytes = remaining_bytes(in);
  std::vector<TraceRecord> out;
  out.reserve(bytes > 8 ? (bytes - 8) / 4 + 1 : 1);
  BinaryTraceReader reader(in);
  TraceRecord r;
  while (reader.next(r)) out.push_back(r);
  return out;
}

std::vector<TraceRecord> load_trace_file_binary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  require(f.is_open(), "trace: cannot open '" + path + "'");
  return parse_trace_binary(f);
}

void save_trace_file_binary(const std::string& path,
                            const std::vector<TraceRecord>& trace) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  require(f.is_open(), "trace: cannot open '" + path + "' for writing");
  write_trace_binary(f, trace);
}

bool is_binary_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return false;
  std::array<char, 6> magic{};
  f.read(magic.data(), magic.size());
  return f.gcount() == static_cast<std::streamsize>(magic.size()) &&
         magic == kBinaryTraceMagic;
}

std::vector<TraceRecord> load_trace_auto(const std::string& path) {
  return is_binary_trace_file(path) ? load_trace_file_binary(path)
                                    : load_trace_file(path);
}

}  // namespace edsim::clients
