#include "clients/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace edsim::clients {

std::vector<TraceRecord> parse_trace(std::istream& in) {
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::uint64_t cycle = 0;
    std::string op;
    std::string addr_str;
    if (!(ls >> cycle)) {
      // Nothing but whitespace: skip.
      bool blank = true;
      for (const char c : line) blank = blank && std::isspace(c) != 0;
      require(blank, "trace: line " + std::to_string(lineno) +
                         ": expected '<cycle> <R|W> <addr>'");
      continue;
    }
    require(static_cast<bool>(ls >> op >> addr_str),
            "trace: line " + std::to_string(lineno) + ": truncated record");
    require(op == "R" || op == "W" || op == "r" || op == "w",
            "trace: line " + std::to_string(lineno) +
                ": op must be R or W, got '" + op + "'");
    TraceRecord r;
    r.cycle = cycle;
    r.type = (op == "R" || op == "r") ? dram::AccessType::kRead
                                      : dram::AccessType::kWrite;
    try {
      r.addr = std::stoull(addr_str, nullptr, 0);  // base 0: dec or 0x hex
    } catch (const std::exception&) {
      require(false, "trace: line " + std::to_string(lineno) +
                         ": bad address '" + addr_str + "'");
    }
    require(out.empty() || r.cycle >= out.back().cycle,
            "trace: line " + std::to_string(lineno) +
                ": cycles must be non-decreasing");
    out.push_back(r);
  }
  return out;
}

std::vector<TraceRecord> parse_trace_text(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

std::vector<TraceRecord> load_trace_file(const std::string& path) {
  std::ifstream f(path);
  require(f.is_open(), "trace: cannot open '" + path + "'");
  return parse_trace(f);
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& trace) {
  for (const TraceRecord& r : trace) {
    out << r.cycle << ' '
        << (r.type == dram::AccessType::kRead ? 'R' : 'W') << " 0x"
        << std::hex << r.addr << std::dec << '\n';
  }
}

}  // namespace edsim::clients
