#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dram/request.hpp"

namespace edsim::clients {

/// Statistics kept per memory client by the front end.
struct ClientStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t bytes = 0;
  std::uint64_t stall_cycles = 0;  ///< had a request but could not enqueue
  std::uint64_t corrected_errors = 0;  ///< completions ECC repaired in flight
  std::uint64_t data_errors = 0;       ///< completions carrying corrupt data
  Accumulator latency;             ///< controller cycles, arrival -> done
  Accumulator outstanding;         ///< in-flight requests sampled per cycle
  SampleSet latency_samples;       ///< exact tail percentiles (p99 etc.)

  double mean_latency() const { return latency.mean(); }
  double p99_latency() const { return latency_samples.percentile(0.99); }

  void save(SnapshotWriter& w) const;
  void load(SnapshotReader& r);
};

/// A memory client: produces burst-granular requests at its own pace.
/// §4: "in practice several memory clients have to read and write data,
/// which introduces page misses and overhead" — this interface is how we
/// model those clients.
class Client {
 public:
  Client(unsigned id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Client() = default;

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  unsigned id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Does the client want to issue a request at this cycle?
  virtual bool has_request(std::uint64_t cycle) const = 0;

  /// Earliest cycle >= `now` at which has_request can become true without
  /// any completion arriving first, or dram::kNeverCycle when it never
  /// will (finished, or blocked until a completion that the memory system
  /// tracks as a separate event). Used by the fast-forward path to leap
  /// over pacing gaps; the conservative default disables skipping.
  virtual std::uint64_t next_request_cycle(std::uint64_t now) const {
    return now;
  }

  /// Dense-traffic hint: the largest n such that, starting at `now`, the
  /// client keeps a request pending every cycle until n of them have been
  /// accepted (dram::kNeverCycle = unbounded). Clients that claim n > 0
  /// promise readiness does not lapse mid-run and must keep the default
  /// (no-op) notify_rejected, so arbitration losses cannot perturb their
  /// pacing. The conservative default claims nothing, which disables the
  /// memory system's dense-stretch burst path for this client.
  virtual std::uint64_t pending_run_length(std::uint64_t /*now*/) const {
    return 0;
  }

  /// Produce the request (only call when has_request is true). The front
  /// end fills in client_id.
  virtual dram::Request make_request(std::uint64_t cycle) = 0;

  /// The front end failed to enqueue (controller queue full / lost
  /// arbitration). Default: nothing — the client retries next cycle.
  virtual void notify_rejected(std::uint64_t /*cycle*/) {}

  /// A previously issued request completed.
  virtual void notify_complete(const dram::Request& /*req*/,
                               std::uint64_t /*cycle*/) {}

  /// True when the client has generated everything it ever will.
  virtual bool finished() const { return false; }

  /// Persist / restore the client's evolving registers (positions, pacing
  /// state, RNG streams). The kind and parameters come from the caller's
  /// reconstruction recipe — only what mutates during a run is stored.
  /// Stateless clients keep the no-op defaults.
  virtual void save_state(SnapshotWriter& /*w*/) const {}
  virtual void load_state(SnapshotReader& /*r*/) {}

 private:
  unsigned id_;
  std::string name_;
};

/// Sequentially streaming client (frame scan-out, packet segment writes…).
/// Issues one burst every `period_cycles` (0 = as fast as possible) over
/// [base, base+length), optionally wrapping forever.
class StreamClient final : public Client {
 public:
  struct Params {
    std::uint64_t base = 0;
    std::uint64_t length = 1 << 20;   ///< bytes
    unsigned burst_bytes = 32;        ///< must match controller granularity
    dram::AccessType type = dram::AccessType::kRead;
    unsigned period_cycles = 0;       ///< min cycles between requests
    std::uint64_t total_requests = 0; ///< 0 = endless (wraps)
    std::uint64_t start_cycle = 0;
  };

  StreamClient(unsigned id, std::string name, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  std::uint64_t pending_run_length(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  Params p_;
  std::uint64_t pos_ = 0;      // byte offset within region
  std::uint64_t issued_ = 0;
  std::uint64_t next_allowed_ = 0;
};

/// Strided client (column-order frame access, matrix transpose...).
class StridedClient final : public Client {
 public:
  struct Params {
    std::uint64_t base = 0;
    std::uint64_t length = 1 << 20;
    unsigned burst_bytes = 32;
    std::uint64_t stride_bytes = 4096;
    dram::AccessType type = dram::AccessType::kRead;
    unsigned period_cycles = 0;
    std::uint64_t total_requests = 0;
  };

  StridedClient(unsigned id, std::string name, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  std::uint64_t pending_run_length(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  Params p_;
  std::uint64_t offset_ = 0;   // current position
  std::uint64_t lane_ = 0;     // wrap count for stride phase
  std::uint64_t issued_ = 0;
  std::uint64_t next_allowed_ = 0;
};

/// Uniform-random client (pointer chasing, table lookups) — the
/// page-miss generator.
class RandomClient final : public Client {
 public:
  struct Params {
    std::uint64_t base = 0;
    std::uint64_t length = 1 << 20;
    unsigned burst_bytes = 32;
    double read_fraction = 0.7;
    unsigned period_cycles = 0;
    std::uint64_t total_requests = 0;
    std::uint64_t seed = 1;
  };

  RandomClient(unsigned id, std::string name, const Params& p);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  std::uint64_t pending_run_length(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  Params p_;
  Rng rng_;
  std::uint64_t issued_ = 0;
  std::uint64_t next_allowed_ = 0;
};

/// Replays an explicit trace (used by the MPEG2 decoder model).
struct TraceRecord {
  std::uint64_t cycle = 0;  ///< earliest issue cycle
  std::uint64_t addr = 0;
  dram::AccessType type = dram::AccessType::kRead;
};

class TraceClient final : public Client {
 public:
  TraceClient(unsigned id, std::string name, std::vector<TraceRecord> trace,
              unsigned burst_bytes);

  bool has_request(std::uint64_t cycle) const override;
  std::uint64_t next_request_cycle(std::uint64_t now) const override;
  std::uint64_t pending_run_length(std::uint64_t now) const override;
  dram::Request make_request(std::uint64_t cycle) override;
  bool finished() const override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  std::size_t position() const { return pos_; }

 private:
  std::vector<TraceRecord> trace_;
  unsigned burst_bytes_;
  std::size_t pos_ = 0;
};

}  // namespace edsim::clients
