#include "clients/system.hpp"

#include "common/error.hpp"
#include "common/snapshot.hpp"

namespace edsim::clients {

MemorySystem::MemorySystem(const dram::DramConfig& cfg, ArbiterKind arbiter,
                           std::vector<double> weights)
    : controller_(cfg), arbiter_(Arbiter::make(arbiter, std::move(weights))) {}

Client& MemorySystem::add_client(std::unique_ptr<Client> client) {
  require(client != nullptr, "memory system: null client");
  clients_.push_back(std::move(client));
  stats_.emplace_back();
  fifos_.emplace_back(controller_.config().bytes_per_access());
  outstanding_.push_back(0);
  return *clients_.back();
}

void MemorySystem::deliver_completions(std::uint64_t cycle) {
  controller_.drain_completed_into(completed_scratch_);
  for (const dram::Request& r : completed_scratch_) {
    const std::size_t i = r.client_id;
    stats_[i].completed++;
    if (r.ecc_corrected) stats_[i].corrected_errors++;
    if (r.data_error) stats_[i].data_errors++;
    stats_[i].latency.add(static_cast<double>(r.latency()));
    stats_[i].latency_samples.add(static_cast<double>(r.latency()));
    fifos_[i].on_complete();
    if (outstanding_[i] > 0) --outstanding_[i];
    clients_[i]->notify_complete(r, cycle);
  }
}

void MemorySystem::step() {
  const std::uint64_t cycle = controller_.cycle();

  // 1. Deliver completions.
  deliver_completions(cycle);

  // 2. Arbitration: one enqueue attempt per cycle (the controller accepts
  //    at most one column command per cycle anyway).
  std::vector<bool>& ready = ready_;
  ready.assign(clients_.size(), false);
  bool any_ready = false;
  if (!clients_paused_) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      ready[i] = clients_[i]->has_request(cycle);
      any_ready = any_ready || ready[i];
    }
  }
  // A channel whose banks have all been retired by the reliability layer
  // accepts nothing; treat it as permanent back-pressure, not a crash.
  if (any_ready && !controller_.queue_full() &&
      !controller_.all_banks_retired()) {
    const std::size_t win = arbiter_->pick(ready);
    if (win != Arbiter::kNone) {
      dram::Request r = clients_[win]->make_request(cycle);
      r.client_id = static_cast<unsigned>(win);
      const bool ok = controller_.enqueue(r);
      require(ok, "memory system: enqueue failed after queue_full check");
      arbiter_->granted(win, controller_.config().bytes_per_access());
      stats_[win].issued++;
      stats_[win].bytes += controller_.config().bytes_per_access();
      fifos_[win].on_issue();
      ++outstanding_[win];
    }
  } else if (any_ready) {
    // Back-pressure: every ready client stalls this cycle.
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (ready[i]) {
        stats_[i].stall_cycles++;
        clients_[i]->notify_rejected(cycle);
      }
    }
  }

  // 3. Per-cycle sampling.
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    fifos_[i].sample();
    stats_[i].outstanding.add(static_cast<double>(outstanding_[i]));
  }

  // 4. Advance the channel.
  controller_.tick();
}

void MemorySystem::skip_quiet_stretch(std::uint64_t end) {
  const std::uint64_t now = controller_.cycle();
  if (now >= end) return;
  // A pending completion means the very next step does real work
  // (delivery + notify_complete at its exact cycle).
  if (controller_.has_completions()) return;
  std::uint64_t stop = std::min(end, controller_.next_event_cycle());
  if (!clients_paused_) {
    for (const auto& c : clients_) {
      const std::uint64_t wake = c->next_request_cycle(now);
      if (wake <= now) return;  // ready now (or conservative client): no skip
      stop = std::min(stop, wake);
    }
  }
  if (stop <= now) return;
  // Every cycle in [now, stop) is quiet: no client ready, no completion,
  // no controller event — a per-cycle step would only sample. Credit the
  // whole stretch in bulk, bit-identically.
  const std::uint64_t k = stop - now;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    fifos_[i].sample_repeated(k);
    stats_[i].outstanding.add_repeated(static_cast<double>(outstanding_[i]),
                                       k);
  }
  controller_.advance_idle(k);
}

void MemorySystem::dense_stretch(std::uint64_t end) {
  // Saturated steady state: each iteration executes one boundary cycle's
  // full step inline (delivery, then at most one arbitration grant that
  // tops the queue back off) and bulk-credits the stall/sample-only
  // cycles up to the next controller event. The loop only returns to
  // per-cycle step() when demand lapses or the shape stops being provably
  // dense — so a saturated stream never pays step()'s per-cycle overhead.
  while (true) {
    const std::uint64_t now = controller_.cycle();
    if (now >= end || clients_paused_) return;
    // Completions retired by the last covered tick deliver here — the
    // same cycle the next per-cycle step would deliver them. Safe even
    // when the loop bails below: step() then drains an empty list.
    if (controller_.has_completions()) deliver_completions(now);
    // Readiness must provably persist across the stretch; a client that
    // claims nothing falls back to per-cycle stepping. Scan after the
    // delivery so notify_complete-driven state is visible, as in step().
    ready_.assign(clients_.size(), false);
    std::uint64_t wake = dram::kNeverCycle;
    bool any_ready = false;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i]->has_request(now)) {
        if (clients_[i]->pending_run_length(now) == 0) return;
        ready_[i] = true;
        any_ready = true;
      } else {
        const std::uint64_t w = clients_[i]->next_request_cycle(now);
        if (w <= now) return;  // conservative client: no claim either way
        wake = std::min(wake, w);
      }
    }
    if (!any_ready) return;  // quiet shape — skip_quiet_stretch's job
    // Cycle `now` must end with a full queue: either it already is, or
    // this cycle's single arbitration grant tops it off. Anything deeper
    // (fill/drain transients, retired banks) is per-cycle territory.
    const bool full = controller_.queue_full();
    std::size_t win = Arbiter::kNone;
    if (!full) {
      if (controller_.queue_size() + 1 < controller_.config().queue_depth ||
          controller_.all_banks_retired()) {
        return;
      }
      // Execute cycle `now`'s arbitration exactly as step() would. With
      // any_ready set every arbiter returns a winner (and a kNone pick
      // mutates nothing, so handing the cycle back to step() is safe).
      win = arbiter_->pick(ready_);
      if (win == Arbiter::kNone) return;
      dram::Request r = clients_[win]->make_request(now);
      r.client_id = static_cast<unsigned>(win);
      const bool ok = controller_.enqueue(r);
      require(ok, "memory system: enqueue failed after queue_full check");
      arbiter_->granted(win, controller_.config().bytes_per_access());
      stats_[win].issued++;
      stats_[win].bytes += controller_.config().bytes_per_access();
      fifos_[win].on_issue();
      ++outstanding_[win];
      // The grant consumed the winner's claim: re-establish it (the
      // stall credit below counts on it) or learn its wake-up instead.
      if (clients_[win]->has_request(now + 1)) {
        if (clients_[win]->pending_run_length(now + 1) == 0) {
          wake = std::min(wake, now + 1);
          ready_[win] = false;
        }
      } else {
        const std::uint64_t w = clients_[win]->next_request_cycle(now + 1);
        wake = std::min(wake, std::max(w, now + 1));
        ready_[win] = false;
      }
    }
    // Advance the channel to just past its next front-end-visible event
    // (first freed queue slot or retirement), bounded by the demand
    // horizon: until then, the queue stays full — every covered step
    // would only stall-count and sample — and no delivery is pending.
    // Crediting the stretch afterwards is safe: the client-side
    // accumulators are disjoint from the controller's own state.
    controller_.dense_advance(std::min(end, wake));
    const std::uint64_t k = controller_.cycle() - now;
    const bool granted_now = win != Arbiter::kNone;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (ready_[i]) {
        // Ready clients stall on every covered back-pressure cycle; a
        // grant cycle is not one (step() skips the stall branch on grant).
        stats_[i].stall_cycles += k - (granted_now ? 1 : 0);
      }
      fifos_[i].sample_repeated(k);
      stats_[i].outstanding.add_repeated(static_cast<double>(outstanding_[i]),
                                         k);
    }
  }
}

void MemorySystem::run(std::uint64_t cycles) {
  const std::uint64_t end = controller_.cycle() + cycles;
  while (controller_.cycle() < end) {
    step();
    if (fast_forward_) skip_quiet_stretch(end);
    if (burst_issue_) dense_stretch(end);
  }
}

void MemorySystem::run_to_completion(std::uint64_t max_cycles) {
  const std::uint64_t limit = controller_.cycle() + max_cycles;
  const auto all_done = [&] {
    bool done = controller_.idle();
    for (const auto& c : clients_) done = done && c->finished();
    return done;
  };
  while (controller_.cycle() < limit) {
    if (all_done()) {
      // One more step to deliver completions retired on the final tick.
      step();
      return;
    }
    step();
    // The done flag cannot change inside a quiet stretch (no issues, no
    // retirements), but skipping past the step() that first observes it
    // would shift the final cycle — so never skip once done.
    if (fast_forward_ && !all_done()) skip_quiet_stretch(limit);
    // A dense stretch needs a full queue, which a finished system cannot
    // have — the guard only mirrors the fast-forward one above.
    if (burst_issue_ && !all_done()) dense_stretch(limit);
  }
  require(false, "memory system: run_to_completion hit the cycle bound");
}

void MemorySystem::save(SnapshotWriter& w) const {
  w.u64(clients_.size());
  controller_.save(w);
  arbiter_->save(w);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->save_state(w);
    stats_[i].save(w);
    fifos_[i].save(w);
    w.u32(outstanding_[i]);
  }
}

void MemorySystem::load(SnapshotReader& r) {
  if (r.u64() != clients_.size()) {
    r.fail("memory-system snapshot client count mismatch");
  }
  controller_.load(r);
  arbiter_->load(r);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->load_state(r);
    stats_[i].load(r);
    fifos_[i].load(r);
    outstanding_[i] = r.u32();
  }
}

std::vector<std::uint8_t> MemorySystem::save_snapshot() const {
  SnapshotWriter w;
  save(w);
  return w.seal();
}

void MemorySystem::restore_snapshot(const std::uint8_t* data,
                                    std::size_t size) {
  SnapshotReader r(data, size);
  load(r);
  r.expect_end();
}

void MemorySystem::reset_measurement() {
  controller_.reset_stats();
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    stats_[i] = ClientStats{};
    fifos_[i].reset_measurement();
  }
}

Bandwidth MemorySystem::aggregate_bandwidth() const {
  return controller_.stats().sustained_bandwidth(controller_.config().clock);
}

double MemorySystem::bandwidth_efficiency() const {
  const double peak = controller_.config().peak_bandwidth().bits_per_s;
  return peak > 0.0 ? aggregate_bandwidth().bits_per_s / peak : 0.0;
}

}  // namespace edsim::clients
