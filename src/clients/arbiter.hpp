#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace edsim {
class SnapshotReader;
class SnapshotWriter;
}  // namespace edsim

namespace edsim::clients {

/// Arbitration policy among clients that all have a request ready this
/// cycle. §3: "optimizing the access scheme to minimize the latency for
/// the memory clients" — the arbiter is the first half of that scheme
/// (the controller's scheduler is the second).
enum class ArbiterKind {
  kRoundRobin,
  kFixedPriority,  ///< lower client index wins
  kWeighted,       ///< deficit-weighted round robin
};

class Arbiter {
 public:
  virtual ~Arbiter() = default;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// `ready[i]` = client i has a request. Returns winning index or kNone.
  virtual std::size_t pick(const std::vector<bool>& ready) = 0;

  /// Weighted arbiters consume budget when a grant succeeds.
  virtual void granted(std::size_t /*index*/, std::uint64_t /*bytes*/) {}

  /// Persist / restore policy state (rotation pointer, credits). Fixed
  /// priority is stateless and keeps the no-op defaults.
  virtual void save(SnapshotWriter& /*w*/) const {}
  virtual void load(SnapshotReader& /*r*/) {}

  static std::unique_ptr<Arbiter> make(ArbiterKind kind,
                                       std::vector<double> weights = {});
};

class RoundRobinArbiter final : public Arbiter {
 public:
  std::size_t pick(const std::vector<bool>& ready) override;
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  std::size_t next_ = 0;
};

class FixedPriorityArbiter final : public Arbiter {
 public:
  std::size_t pick(const std::vector<bool>& ready) override;
};

/// Deficit-weighted round robin: each client accrues credit proportional
/// to its weight; the ready client with the largest credit wins and pays
/// for the granted bytes. Guarantees long-run bandwidth shares.
class WeightedArbiter final : public Arbiter {
 public:
  explicit WeightedArbiter(std::vector<double> weights);

  std::size_t pick(const std::vector<bool>& ready) override;
  void granted(std::size_t index, std::uint64_t bytes) override;
  void save(SnapshotWriter& w) const override;
  void load(SnapshotReader& r) override;

 private:
  std::vector<double> weights_;
  std::vector<double> credit_;
};

}  // namespace edsim::clients
