#pragma once

#include <string>

#include "common/units.hpp"
#include "phy/interface_model.hpp"

namespace edsim::phy {

/// A discrete memory device kind, reduced to the attributes that matter
/// for system composition: per-chip capacity and interface width/clock.
struct DiscreteChip {
  Capacity capacity = Capacity::mbit(64);
  unsigned interface_bits = 16;
  Frequency clock{100.0};
  std::string name = "64Mbit x16 SDRAM";
};

/// Composition of discrete chips to reach a target bus width — the §1
/// granularity argument: "it would take 16 discrete 4-Mbit chips
/// (organized as 256K x 16) to achieve the same width, so the granularity
/// of such a discrete system is 64 Mbit."
class DiscreteSystem {
 public:
  DiscreteSystem(DiscreteChip chip, unsigned target_width_bits);

  unsigned chip_count() const { return chips_; }
  unsigned width_bits() const;

  /// Memory installed whether the application wants it or not.
  Capacity installed_capacity() const { return chip_.capacity * chips_; }

  /// The granularity: smallest capacity increment available (adding a
  /// rank of `chips_` devices).
  Capacity granularity() const { return installed_capacity(); }

  /// Installed minus required (the "unnecessary but unavoidable extra
  /// memory" of §4). `required` must be <= installed for a single rank.
  Capacity overhead_for(Capacity required) const;

  Bandwidth peak_bandwidth() const;

  /// Interface power at a given utilization: every chip drives its own
  /// off-chip pins.
  double io_power_w(const IoElectricals& io, double utilization) const;

  /// Energy per transported payload bit across the whole rank.
  double energy_per_bit_j(const IoElectricals& io) const;

  const DiscreteChip& chip() const { return chip_; }

 private:
  DiscreteChip chip_;
  unsigned chips_;
};

}  // namespace edsim::phy
