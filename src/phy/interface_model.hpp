#pragma once

#include <string>

#include "common/units.hpp"

namespace edsim::phy {

/// Electrical parameters of one memory-interface signal class.
///
/// The §1 power argument is pure C·V²·f physics: an off-chip driver sees a
/// board trace + package + input load of tens of pF, an on-chip wire a
/// couple of pF, so replacing the board interface with an internal bus
/// divides interface power by roughly the capacitance ratio.
struct IoElectricals {
  double load_pf = 30.0;    ///< capacitive load per signal (pF)
  double swing_v = 3.3;     ///< voltage swing (V)
  double activity = 0.5;    ///< toggling probability per data pin per beat
  double ctrl_overhead = 0.25;  ///< extra addr/ctl pins as fraction of data

  std::string describe() const;
};

/// Off-chip: board trace + connector + DIMM loading, 3.3 V LVTTL era.
IoElectricals off_chip_board();
/// On-chip: short internal bus in a 0.24 um process, 2.5 V DRAM supply.
IoElectricals on_chip_wire();

/// Power/energy model for one memory interface of `width_bits` data
/// signals clocked at `clock`.
class InterfaceModel {
 public:
  InterfaceModel(unsigned width_bits, Frequency clock, IoElectricals io);

  /// Energy to move a single data bit across the interface (J).
  double energy_per_bit_j() const;

  /// Dynamic power (W) at the given data-bus utilization in [0,1]
  /// (fraction of beats carrying data). Control/address pins switch with
  /// the same utilization, scaled by ctrl_overhead.
  double dynamic_power_w(double utilization) const;

  /// Energy (J) to transfer `bytes` of payload.
  double transfer_energy_j(double bytes) const;

  unsigned width_bits() const { return width_bits_; }
  Frequency clock() const { return clock_; }
  const IoElectricals& io() const { return io_; }
  Bandwidth peak_bandwidth() const {
    return edsim::peak_bandwidth(width_bits_, clock_);
  }

 private:
  unsigned width_bits_;
  Frequency clock_;
  IoElectricals io_;
};

}  // namespace edsim::phy
