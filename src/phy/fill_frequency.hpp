#pragma once

#include <vector>

#include "common/units.hpp"
#include "phy/discrete_system.hpp"

namespace edsim::phy {

/// One point of a fill-frequency study (paper §1, footnote 2: fill
/// frequency = bandwidth [Mbit/s] / size [Mbit] — how many times per
/// second the memory can be completely rewritten).
struct FillPoint {
  Capacity size;
  unsigned width_bits = 0;
  Bandwidth peak;
  double fill_hz = 0.0;
};

/// Fill frequency of an embedded module of `size` with the given
/// interface.
FillPoint embedded_fill_point(Capacity size, unsigned width_bits,
                              Frequency clock);

/// Fill frequency of the smallest discrete system (single rank of `chip`)
/// that reaches `target_width_bits`; the achievable size is quantized to
/// the rank capacity (granularity floor).
FillPoint discrete_fill_point(const DiscreteChip& chip,
                              unsigned target_width_bits);

/// Sweep helper: embedded fill frequency across sizes (Mbit) at a fixed
/// width, plus the discrete comparison at each size (discrete size is
/// rounded up to its granularity).
struct FillComparison {
  Capacity requested;
  FillPoint embedded;
  FillPoint discrete;
  double advantage = 0.0;  ///< embedded fill / discrete fill
};
std::vector<FillComparison> fill_frequency_sweep(
    const std::vector<unsigned>& sizes_mbit, unsigned embedded_width_bits,
    Frequency embedded_clock, const DiscreteChip& chip,
    unsigned discrete_width_bits);

}  // namespace edsim::phy
