#include "phy/fill_frequency.hpp"

#include "common/error.hpp"

namespace edsim::phy {

FillPoint embedded_fill_point(Capacity size, unsigned width_bits,
                              Frequency clock) {
  require(size.bit_count() > 0, "fill: size must be positive");
  FillPoint p;
  p.size = size;
  p.width_bits = width_bits;
  p.peak = peak_bandwidth(width_bits, clock);
  p.fill_hz = fill_frequency_hz(p.peak, size);
  return p;
}

FillPoint discrete_fill_point(const DiscreteChip& chip,
                              unsigned target_width_bits) {
  const DiscreteSystem sys(chip, target_width_bits);
  FillPoint p;
  p.size = sys.installed_capacity();
  p.width_bits = sys.width_bits();
  p.peak = sys.peak_bandwidth();
  p.fill_hz = fill_frequency_hz(p.peak, p.size);
  return p;
}

std::vector<FillComparison> fill_frequency_sweep(
    const std::vector<unsigned>& sizes_mbit, unsigned embedded_width_bits,
    Frequency embedded_clock, const DiscreteChip& chip,
    unsigned discrete_width_bits) {
  std::vector<FillComparison> out;
  out.reserve(sizes_mbit.size());
  for (unsigned m : sizes_mbit) {
    FillComparison c;
    c.requested = Capacity::mbit(m);
    c.embedded =
        embedded_fill_point(c.requested, embedded_width_bits, embedded_clock);

    // Discrete: a rank wide enough for the bus; if the application needs
    // more than one rank's capacity, add ranks (each adds capacity but the
    // bus is shared, so bandwidth does not scale).
    const DiscreteSystem rank(chip, discrete_width_bits);
    const std::uint64_t rank_bits = rank.installed_capacity().bit_count();
    const std::uint64_t need_bits = c.requested.bit_count();
    const std::uint64_t ranks = (need_bits + rank_bits - 1) / rank_bits;
    c.discrete.size = Capacity::bits(rank_bits * (ranks ? ranks : 1));
    c.discrete.width_bits = rank.width_bits();
    c.discrete.peak = rank.peak_bandwidth();
    c.discrete.fill_hz = fill_frequency_hz(c.discrete.peak, c.discrete.size);

    c.advantage = c.embedded.fill_hz / c.discrete.fill_hz;
    out.push_back(c);
  }
  return out;
}

}  // namespace edsim::phy
