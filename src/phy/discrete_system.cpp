#include "phy/discrete_system.hpp"

#include "common/error.hpp"

namespace edsim::phy {

DiscreteSystem::DiscreteSystem(DiscreteChip chip, unsigned target_width_bits)
    : chip_(std::move(chip)) {
  require(chip_.interface_bits >= 1, "discrete: chip width must be >= 1");
  require(target_width_bits >= chip_.interface_bits,
          "discrete: target width below one chip's width");
  chips_ = (target_width_bits + chip_.interface_bits - 1) /
           chip_.interface_bits;
}

unsigned DiscreteSystem::width_bits() const {
  return chips_ * chip_.interface_bits;
}

Capacity DiscreteSystem::overhead_for(Capacity required) const {
  const Capacity inst = installed_capacity();
  require(required <= inst,
          "discrete: required capacity exceeds one rank; model multiple "
          "ranks explicitly");
  return inst - required;
}

Bandwidth DiscreteSystem::peak_bandwidth() const {
  return edsim::peak_bandwidth(width_bits(), chip_.clock);
}

double DiscreteSystem::io_power_w(const IoElectricals& io,
                                  double utilization) const {
  const InterfaceModel rank(width_bits(), chip_.clock, io);
  return rank.dynamic_power_w(utilization);
}

double DiscreteSystem::energy_per_bit_j(const IoElectricals& io) const {
  const InterfaceModel rank(width_bits(), chip_.clock, io);
  return rank.energy_per_bit_j();
}

}  // namespace edsim::phy
