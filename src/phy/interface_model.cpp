#include "phy/interface_model.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace edsim::phy {

std::string IoElectricals::describe() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "%.1f pF @ %.2f V, activity %.2f, ctl overhead %.0f%%",
                load_pf, swing_v, activity, ctrl_overhead * 100.0);
  return buf;
}

IoElectricals off_chip_board() {
  IoElectricals io;
  io.load_pf = 25.0;  // trace + package + input capacitance, multi-drop bus
  io.swing_v = 3.3;   // LVTTL signalling of PC66/PC100 SDRAM
  io.activity = 0.5;
  io.ctrl_overhead = 0.25;
  return io;
}

IoElectricals on_chip_wire() {
  IoElectricals io;
  io.load_pf = 4.0;  // a few mm of on-chip routing across a large macro (§1)
  io.swing_v = 2.5;  // internal DRAM supply
  io.activity = 0.5;
  io.ctrl_overhead = 0.25;
  return io;
}

InterfaceModel::InterfaceModel(unsigned width_bits, Frequency clock,
                               IoElectricals io)
    : width_bits_(width_bits), clock_(clock), io_(io) {
  require(width_bits >= 1, "phy: width must be >= 1");
  require(clock.mhz > 0.0, "phy: clock must be positive");
  require(io.load_pf > 0.0 && io.swing_v > 0.0, "phy: bad electricals");
  require(io.activity >= 0.0 && io.activity <= 1.0,
          "phy: activity must be in [0,1]");
}

double InterfaceModel::energy_per_bit_j() const {
  // One transported bit toggles its wire with probability `activity`;
  // amortize the addr/ctl pins over the data payload.
  const double e_wire = switching_energy_j(io_.load_pf * kPicofarad,
                                           io_.swing_v);
  return e_wire * io_.activity * (1.0 + io_.ctrl_overhead);
}

double InterfaceModel::dynamic_power_w(double utilization) const {
  require(utilization >= 0.0 && utilization <= 1.0,
          "phy: utilization must be in [0,1]");
  const double bits_per_s =
      static_cast<double>(width_bits_) * clock_.hz() * utilization;
  return bits_per_s * energy_per_bit_j();
}

double InterfaceModel::transfer_energy_j(double bytes) const {
  return bytes * 8.0 * energy_per_bit_j();
}

}  // namespace edsim::phy
