#pragma once

#include <string>

#include "common/units.hpp"
#include "modulegen/building_block.hpp"

namespace edsim::modulegen {

/// Redundancy provisioning levels (§5: "different redundancy levels, in
/// order to optimize the yield of the memory module to the specific
/// chip"; §6 ties them to target quality).
enum class RedundancyLevel {
  kNone,      ///< no spares — cheapest, yield = raw array yield
  kStandard,  ///< 2 spare rows + 2 spare columns per bank
  kHigh,      ///< 4 spare rows + 4 spare columns per bank
};

unsigned spare_rows(RedundancyLevel level);
unsigned spare_cols(RedundancyLevel level);
/// Area multiplier for the array region at the given level.
double redundancy_area_factor(RedundancyLevel level);

/// User-visible knobs of the flexible module concept (§5): capacity in
/// 256-Kbit granules, interface width 16..512, bank count, page length,
/// redundancy level.
struct ModuleSpec {
  Capacity capacity = Capacity::mbit(16);
  unsigned interface_bits = 256;
  unsigned banks = 4;
  unsigned page_bytes = 2048;
  RedundancyLevel redundancy = RedundancyLevel::kStandard;
  /// Store SEC-DED check bits alongside every 64-bit word and place the
  /// codec next to the secondary sense amps. Widens the array by 8/64
  /// and adds interface-width-proportional periphery logic.
  bool ecc = false;

  void validate() const;
};

/// Compiled module: physical/performance characteristics.
struct ModuleDesign {
  ModuleSpec spec;
  BlockMix blocks;
  double array_area_mm2 = 0.0;
  double periphery_area_mm2 = 0.0;
  double total_area_mm2 = 0.0;
  double area_efficiency_mbit_per_mm2 = 0.0;
  double cycle_ns = 0.0;
  Frequency clock{0.0};
  Bandwidth peak;

  std::string describe() const;
};

/// The "memory compiler": deterministically maps a spec onto blocks and
/// physical estimates. Guarantees the §5 envelope: cycle <= 7 ns,
/// ~1 Mbit/mm² for >= 8-16 Mbit, peak ~9 GB/s at 512 bits.
class ModuleCompiler {
 public:
  ModuleDesign compile(const ModuleSpec& spec) const;

  /// Derived simulator configuration for the compiled module (the bridge
  /// into the dram/ library lives in core/ to avoid a dependency cycle;
  /// this returns the pieces needed there).
  struct SimHints {
    unsigned rows_per_bank = 0;
    double clock_mhz = 0.0;
  };
  SimHints sim_hints(const ModuleDesign& d) const;
};

}  // namespace edsim::modulegen
