#pragma once

namespace edsim::modulegen {

struct ModuleSpec;

/// Periphery area (mm²) of a module: fixed control/BIST/fuse block, plus
/// per-bank decoders/sense amplifier strips, plus interface routing that
/// scales with width. Calibrated so a 16-Mbit, 256-bit, 4-bank module
/// lands at ≈1 Mbit/mm² (§5).
double periphery_area_mm2(const ModuleSpec& spec);

/// Cycle time (ns) of a compiled module. The §5 concept guarantees
/// "better than 7 ns"; wider interfaces and more banks cost margin, very
/// long pages cost sense-amp time, and the model keeps everything within
/// 7 ns for in-envelope specs.
double cycle_time_ns(const ModuleSpec& spec);

}  // namespace edsim::modulegen
