#include "modulegen/module_compiler.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "modulegen/area_model.hpp"

namespace edsim::modulegen {

unsigned spare_rows(RedundancyLevel level) {
  switch (level) {
    case RedundancyLevel::kNone: return 0;
    case RedundancyLevel::kStandard: return 2;
    case RedundancyLevel::kHigh: return 4;
  }
  return 0;
}

unsigned spare_cols(RedundancyLevel level) { return spare_rows(level); }

double redundancy_area_factor(RedundancyLevel level) {
  switch (level) {
    case RedundancyLevel::kNone: return 1.0;
    case RedundancyLevel::kStandard: return 1.02;
    case RedundancyLevel::kHigh: return 1.045;
  }
  return 1.0;
}

void ModuleSpec::validate() const {
  require(capacity >= Capacity::kbit(256),
          "module: minimum capacity is one 256-Kbit block (§5)");
  require(capacity <= Capacity::mbit(256),
          "module: beyond 256 Mbit exceeds the concept's envelope");
  require(capacity.bit_count() % Capacity::kbit(256).bit_count() == 0,
          "module: capacity granularity is 256 Kbit (§5)");
  require(interface_bits >= 16 && interface_bits <= 512,
          "module: interface width must be 16..512 bits (§5)");
  require(std::has_single_bit(interface_bits),
          "module: interface width must be a power of two");
  require(banks >= 1 && banks <= 16 && std::has_single_bit(banks),
          "module: bank count must be a power of two in 1..16");
  require(page_bytes >= interface_bits / 8,
          "module: page shorter than one interface beat");
  require(std::has_single_bit(page_bytes),
          "module: page length must be a power of two");
  // Geometry must divide: capacity -> banks -> rows of page_bytes.
  const std::uint64_t bytes = capacity.byte_count();
  require(bytes % banks == 0, "module: capacity not divisible by banks");
  require((bytes / banks) % page_bytes == 0,
          "module: bank capacity not divisible into pages");
}

std::string ModuleDesign::describe() const {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%s module, %u-bit, %u banks, %uB pages: %.1f mm^2 "
      "(%.2f Mbit/mm^2), %.1f ns cycle, peak %.2f GB/s",
      to_string(spec.capacity).c_str(), spec.interface_bits, spec.banks,
      spec.page_bytes, total_area_mm2, area_efficiency_mbit_per_mm2,
      cycle_ns, peak.as_gbyte_per_s());
  return buf;
}

ModuleDesign ModuleCompiler::compile(const ModuleSpec& spec) const {
  spec.validate();
  ModuleDesign d;
  d.spec = spec;
  d.blocks = tile_capacity(spec.capacity);
  d.array_area_mm2 =
      d.blocks.array_area_mm2() * redundancy_area_factor(spec.redundancy);
  if (spec.ecc) d.array_area_mm2 *= 72.0 / 64.0;  // check-bit columns
  d.periphery_area_mm2 = periphery_area_mm2(spec);
  d.total_area_mm2 = d.array_area_mm2 + d.periphery_area_mm2;
  d.area_efficiency_mbit_per_mm2 = spec.capacity.as_mbit() / d.total_area_mm2;
  d.cycle_ns = cycle_time_ns(spec);
  d.clock = Frequency{1000.0 / d.cycle_ns};
  d.peak = peak_bandwidth(spec.interface_bits, d.clock);
  return d;
}

ModuleCompiler::SimHints ModuleCompiler::sim_hints(
    const ModuleDesign& d) const {
  SimHints h;
  const std::uint64_t per_bank = d.spec.capacity.byte_count() / d.spec.banks;
  h.rows_per_bank = static_cast<unsigned>(per_bank / d.spec.page_bytes);
  h.clock_mhz = d.clock.mhz;
  return h;
}

}  // namespace edsim::modulegen
