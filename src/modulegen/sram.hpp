#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace edsim::modulegen {

/// On-chip 6T SRAM macro model for the §3 partitioning question: "since
/// edram allows to integrate SRAMs and DRAMs, decisions on the ...
/// SRAM/DRAM partitioning have to be made."
///
/// In a quarter-micron logic flow the 6T cell is ~8x the DRAM cell, but
/// the macro needs almost no periphery, no refresh, and reads in a
/// couple of nanoseconds.
struct SramModel {
  double mm2_per_mbit = 8.5;     ///< array density (6T, 0.25 um)
  double fixed_mm2 = 0.02;       ///< decoder/margin per macro
  double access_ns = 2.5;
  double standby_mw_per_mbit = 0.5;

  double area_mm2(Capacity c) const {
    return fixed_mm2 + mm2_per_mbit * c.as_mbit();
  }
};

/// Area of the *smallest* eDRAM module that holds `c` (256-Kbit
/// granularity, 1 bank, 16-bit interface): what a buffer pays if it is
/// put into DRAM instead.
double min_edram_area_mm2(Capacity c);

/// One buffer the system needs.
struct BufferSpec {
  std::string name;
  Capacity size;
  bool latency_critical = false;  ///< must avoid row-cycle behaviour
};

enum class Medium { kSram, kEdram };

struct PlacedBuffer {
  BufferSpec spec;
  Medium medium = Medium::kEdram;
  double area_mm2 = 0.0;
};

struct PartitionPlan {
  std::vector<PlacedBuffer> buffers;
  double sram_area_mm2 = 0.0;
  double edram_area_mm2 = 0.0;
  double total_area_mm2() const { return sram_area_mm2 + edram_area_mm2; }
  Capacity sram_capacity() const;
  Capacity edram_capacity() const;
};

/// Greedy optimal per-buffer partitioning: each buffer independently
/// goes to the cheaper medium (latency-critical buffers are pinned to
/// SRAM). Buffers placed in eDRAM share one module, so the module's
/// fixed periphery is paid once — which is exactly why big buffer *sets*
/// tip toward eDRAM while any individual small buffer looks SRAM-cheap.
PartitionPlan partition_buffers(const std::vector<BufferSpec>& buffers,
                                const SramModel& sram = {});

/// The capacity below which a standalone buffer is cheaper in SRAM.
Capacity sram_edram_crossover(const SramModel& sram = {});

}  // namespace edsim::modulegen
