#include "modulegen/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace edsim::modulegen {

namespace {
// Physical shape of the 1-Mbit building block in the 0.24 um process:
// 0.8 mm2 as a 1.14 x 0.70 mm tile (arrays are wider than tall).
constexpr double kBlockW = 1.14;
constexpr double kBlockH = 0.70;
// Top-level routing/integration overhead between macros and logic.
constexpr double kRoutingFraction = 0.08;
}  // namespace

void ChipSpec::validate() const {
  require(!modules.empty(), "chip: need at least one memory module");
  for (const auto& m : modules) m.validate();
  require(logic_kgates >= 0.0, "chip: negative logic");
  require(logic_density_kgates_mm2 > 0.0, "chip: bad logic density");
  require(max_die_mm2 > 0.0, "chip: bad die limit");
}

Capacity ChipPlan::total_memory() const {
  Capacity c;
  for (const auto& m : macros) c = c + m.design.spec.capacity;
  return c;
}

ChipPlan plan_chip(const ChipSpec& spec) {
  spec.validate();
  const ModuleCompiler compiler;

  ChipPlan plan;
  double macros_width = 0.0;
  double macros_height = 0.0;
  for (const ModuleSpec& ms : spec.modules) {
    MacroOutline m;
    m.design = compiler.compile(ms);
    // Tile the equivalent 1-Mbit block count into a near-square grid.
    const double blocks =
        std::max(1.0, m.design.spec.capacity.as_mbit());
    m.grid_cols = static_cast<unsigned>(std::max(
        1.0, std::round(std::sqrt(blocks * kBlockH / kBlockW))));
    m.grid_rows = static_cast<unsigned>(
        std::ceil(blocks / m.grid_cols));
    // Scale the grid outline so its area matches the compiled area
    // (periphery distributes along the macro edges).
    const double grid_area =
        m.grid_cols * kBlockW * m.grid_rows * kBlockH;
    const double scale =
        std::sqrt(m.design.total_area_mm2 / grid_area);
    m.width_mm = m.grid_cols * kBlockW * scale;
    m.height_mm = m.grid_rows * kBlockH * scale;
    macros_width += m.width_mm;
    macros_height = std::max(macros_height, m.height_mm);
    plan.memory_area_mm2 += m.design.total_area_mm2;
    plan.macros.push_back(std::move(m));
  }

  plan.logic_area_mm2 = spec.logic_kgates / spec.logic_density_kgates_mm2;
  const double active = plan.memory_area_mm2 + plan.logic_area_mm2;
  plan.routing_area_mm2 = active * kRoutingFraction;
  plan.total_area_mm2 = active + plan.routing_area_mm2;

  // Macros side by side along the bottom edge; logic strip above them.
  plan.die_width_mm = std::max(macros_width, 1.0);
  const double logic_h =
      (plan.logic_area_mm2 + plan.routing_area_mm2) / plan.die_width_mm;
  plan.die_height_mm = macros_height + logic_h;
  // Let the outline relax toward the area-preserving square if the strip
  // stack came out extreme (a floorplanner would re-tile macros).
  const double long_side = std::max(plan.die_width_mm, plan.die_height_mm);
  const double short_side = std::min(plan.die_width_mm, plan.die_height_mm);
  plan.aspect_ratio = long_side / short_side;
  if (plan.aspect_ratio > 2.0) {
    const double target = std::sqrt(plan.total_area_mm2 / 2.0);
    plan.die_width_mm = std::max(target * 2.0, macros_width * 0.75);
    plan.die_height_mm = plan.total_area_mm2 / plan.die_width_mm;
    plan.aspect_ratio =
        std::max(plan.die_width_mm, plan.die_height_mm) /
        std::min(plan.die_width_mm, plan.die_height_mm);
  }

  char buf[160];
  if (plan.total_area_mm2 <= spec.max_die_mm2) {
    plan.feasible = true;
    std::snprintf(buf, sizeof buf,
                  "feasible: %.0f mm2 die (%.0f mm2 memory, %.0f mm2 "
                  "logic) within the %.0f mm2 envelope",
                  plan.total_area_mm2, plan.memory_area_mm2,
                  plan.logic_area_mm2, spec.max_die_mm2);
  } else {
    plan.feasible = false;
    std::snprintf(buf, sizeof buf,
                  "infeasible: %.0f mm2 exceeds the %.0f mm2 envelope",
                  plan.total_area_mm2, spec.max_die_mm2);
  }
  plan.verdict = buf;
  return plan;
}

}  // namespace edsim::modulegen
