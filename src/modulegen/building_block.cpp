#include "modulegen/building_block.hpp"

#include "common/error.hpp"

namespace edsim::modulegen {

BlockInfo block_info(BlockKind kind) {
  switch (kind) {
    case BlockKind::k256Kbit:
      // Four 256K tiles cost ~25% more area than one 1M tile: local
      // decoders and sense amps are amortized over fewer cells.
      return BlockInfo{kind, Capacity::kbit(256), 0.25, "256Kbit"};
    case BlockKind::k1Mbit:
      return BlockInfo{kind, Capacity::mbit(1), 0.80, "1Mbit"};
  }
  require(false, "block_info: unknown kind");
  return {};
}

double BlockMix::array_area_mm2() const {
  return static_cast<double>(blocks_1m) *
             block_info(BlockKind::k1Mbit).array_area_mm2 +
         static_cast<double>(blocks_256k) *
             block_info(BlockKind::k256Kbit).array_area_mm2;
}

BlockMix tile_capacity(Capacity capacity) {
  require(capacity.bit_count() > 0, "tile: capacity must be positive");
  const std::uint64_t k256 = Capacity::kbit(256).bit_count();
  require(capacity.bit_count() % k256 == 0,
          "tile: module capacity must be a multiple of 256 Kbit (§5 "
          "granularity)");
  const std::uint64_t quarters = capacity.bit_count() / k256;
  BlockMix mix;
  mix.blocks_1m = static_cast<unsigned>(quarters / 4);
  mix.blocks_256k = static_cast<unsigned>(quarters % 4);
  return mix;
}

}  // namespace edsim::modulegen
