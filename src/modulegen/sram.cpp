#include "modulegen/sram.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "modulegen/module_compiler.hpp"

namespace edsim::modulegen {

namespace {

/// Round a capacity up to the §5 granularity (one 256-Kbit block).
Capacity round_to_block(Capacity c) {
  const std::uint64_t granule = Capacity::kbit(256).bit_count();
  const std::uint64_t bits =
      (c.bit_count() + granule - 1) / granule * granule;
  return Capacity::bits(bits);
}

/// A valid (power-of-two-rows) minimal module spec holding `c`.
ModuleSpec min_module_spec(Capacity c) {
  ModuleSpec s;
  s.capacity = round_to_block(c);
  s.interface_bits = 16;
  s.banks = 1;
  // Pick a page length that divides the capacity into a power-of-two
  // row count.
  for (unsigned page : {512u, 1024u, 2048u, 4096u}) {
    s.page_bytes = page;
    const std::uint64_t bytes = s.capacity.byte_count();
    if (bytes % page != 0) continue;
    const std::uint64_t rows = bytes / page;
    if ((rows & (rows - 1)) == 0) return s;
  }
  // Fall back: bump to the next power-of-two capacity in blocks.
  std::uint64_t blocks =
      s.capacity.bit_count() / Capacity::kbit(256).bit_count();
  while ((blocks & (blocks - 1)) != 0) ++blocks;
  s.capacity = Capacity::kbit(256) * blocks;
  s.page_bytes = 512;
  return s;
}

}  // namespace

double min_edram_area_mm2(Capacity c) {
  require(c.bit_count() > 0, "partition: empty buffer");
  const ModuleSpec s = min_module_spec(c);
  return ModuleCompiler{}.compile(s).total_area_mm2;
}

Capacity PartitionPlan::sram_capacity() const {
  Capacity c;
  for (const auto& b : buffers)
    if (b.medium == Medium::kSram) c = c + b.spec.size;
  return c;
}

Capacity PartitionPlan::edram_capacity() const {
  Capacity c;
  for (const auto& b : buffers)
    if (b.medium == Medium::kEdram) c = c + b.spec.size;
  return c;
}

PartitionPlan partition_buffers(const std::vector<BufferSpec>& buffers,
                                const SramModel& sram) {
  require(!buffers.empty(), "partition: no buffers");
  PartitionPlan plan;

  // First pass: pin latency-critical buffers to SRAM; for the rest,
  // tentatively compare SRAM cost against the *marginal* eDRAM cost
  // (array only — the shared module periphery is handled below).
  const double marginal_edram_per_mbit =
      block_info(BlockKind::k1Mbit).array_area_mm2;
  Capacity edram_total;
  for (const BufferSpec& b : buffers) {
    PlacedBuffer p;
    p.spec = b;
    const double sram_cost = sram.area_mm2(b.size);
    const double edram_marginal =
        marginal_edram_per_mbit * round_to_block(b.size).as_mbit();
    if (b.latency_critical || sram_cost < edram_marginal) {
      p.medium = Medium::kSram;
      p.area_mm2 = sram_cost;
      plan.sram_area_mm2 += sram_cost;
    } else {
      p.medium = Medium::kEdram;
      edram_total = edram_total + round_to_block(b.size);
    }
    plan.buffers.push_back(p);
  }

  // Second pass: the eDRAM residents share one module; charge its real
  // compiled area and apportion it by capacity (reporting only).
  if (edram_total.bit_count() > 0) {
    plan.edram_area_mm2 = min_edram_area_mm2(edram_total);
    for (auto& p : plan.buffers) {
      if (p.medium == Medium::kEdram) {
        p.area_mm2 = plan.edram_area_mm2 *
                     static_cast<double>(p.spec.size.bit_count()) /
                     static_cast<double>(edram_total.bit_count());
      }
    }
  }
  return plan;
}

Capacity sram_edram_crossover(const SramModel& sram) {
  // Binary search on the block-granular sizes.
  Capacity lo = Capacity::kbit(16);
  Capacity hi = Capacity::mbit(16);
  require(sram.area_mm2(lo) < min_edram_area_mm2(lo),
          "partition: SRAM should win at tiny sizes");
  require(sram.area_mm2(hi) > min_edram_area_mm2(hi),
          "partition: eDRAM should win at large sizes");
  while (hi.bit_count() - lo.bit_count() > Capacity::kbit(16).bit_count()) {
    const Capacity mid = Capacity::bits((lo.bit_count() + hi.bit_count()) / 2);
    if (sram.area_mm2(mid) < min_edram_area_mm2(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace edsim::modulegen
