#include "modulegen/area_model.hpp"

#include <algorithm>
#include <cmath>

#include "modulegen/module_compiler.hpp"

namespace edsim::modulegen {

namespace {
double log2_clamped(double v) { return v <= 1.0 ? 0.0 : std::log2(v); }
}  // namespace

double periphery_area_mm2(const ModuleSpec& spec) {
  // Fixed: module control, BIST engine, fuse boxes, voltage generators.
  const double fixed = 1.2;
  // Per bank: row decoders, sense-amplifier strips, bank control.
  const double per_bank = 0.28 * static_cast<double>(spec.banks);
  // Interface: secondary sense amps + routing scale with width.
  const double interface = 0.003 * static_cast<double>(spec.interface_bits);
  // SEC-DED codec: XOR trees sized by the number of 64-bit lanes the
  // interface carries, plus a fixed syndrome-decode/control block.
  const double ecc_logic =
      spec.ecc ? 0.12 + 0.0008 * static_cast<double>(spec.interface_bits)
               : 0.0;
  return fixed + per_bank + interface + ecc_logic;
}

double cycle_time_ns(const ModuleSpec& spec) {
  // Base array cycle plus wire/fan-out penalties. Calibrated so the full
  // §5 envelope (up to 128 Mbit, 512 bits, 8 KB pages) stays below the
  // 7 ns guarantee, and a 512-bit module peaks near 9 GB/s.
  const double base = 5.2;
  const double capacity_term = 0.11 * log2_clamped(spec.capacity.as_mbit());
  const double width_term =
      0.18 * log2_clamped(static_cast<double>(spec.interface_bits) / 16.0);
  const double page_term =
      0.08 * log2_clamped(static_cast<double>(spec.page_bytes) / 1024.0);
  return base + capacity_term + width_term + page_term;
}

}  // namespace edsim::modulegen
