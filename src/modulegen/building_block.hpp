#pragma once

#include <string>

#include "common/units.hpp"

namespace edsim::modulegen {

/// The two memory building-block sizes of the §5 concept. Modules are
/// tiled from these; the small block buys granularity at worse density.
enum class BlockKind { k256Kbit, k1Mbit };

struct BlockInfo {
  BlockKind kind;
  Capacity capacity;
  double array_area_mm2;  ///< cell array + local periphery
  const char* name;
};

/// Area calibration: chosen so that large modules land at the paper's
/// ~1 Mbit/mm² in the 0.24 um process, and small modules fall well below
/// it (fixed periphery dominates).
BlockInfo block_info(BlockKind kind);

/// Smallest number of blocks (preferring 1-Mbit tiles, padding with
/// 256-Kbit tiles) that reaches `capacity`. Capacity must be a multiple
/// of 256 Kbit.
struct BlockMix {
  unsigned blocks_1m = 0;
  unsigned blocks_256k = 0;
  Capacity total() const {
    return Capacity::mbit(blocks_1m) + Capacity::kbit(256) * blocks_256k;
  }
  double array_area_mm2() const;
};

BlockMix tile_capacity(Capacity capacity);

}  // namespace edsim::modulegen
