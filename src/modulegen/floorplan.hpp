#pragma once

#include <string>
#include <vector>

#include "modulegen/module_compiler.hpp"

namespace edsim::modulegen {

/// A whole embedded chip: one or more memory modules plus a logic block.
/// §1 anchors the envelope: "In quarter-micron technology, chips with up
/// to 128 Mbit of DRAM and 500 kgates of logic, or 64 Mbit of DRAM and
/// 1 Mgates of logic are feasible."
struct ChipSpec {
  std::vector<ModuleSpec> modules;
  double logic_kgates = 500.0;
  /// Logic density on the (DRAM-based) master process; §3's logic
  /// penalty is baked into the default.
  double logic_density_kgates_mm2 = 25.0;
  /// Economic die-size ceiling for the era (yield/reticle driven).
  double max_die_mm2 = 200.0;

  void validate() const;
};

/// Placed outline of one memory macro (grid of building blocks).
struct MacroOutline {
  ModuleDesign design;
  unsigned grid_cols = 0;
  unsigned grid_rows = 0;
  double width_mm = 0.0;
  double height_mm = 0.0;
};

/// Complete chip plan with the §1 feasibility verdict.
struct ChipPlan {
  std::vector<MacroOutline> macros;
  double memory_area_mm2 = 0.0;
  double logic_area_mm2 = 0.0;
  double routing_area_mm2 = 0.0;  ///< top-level integration overhead
  double total_area_mm2 = 0.0;
  double die_width_mm = 0.0;
  double die_height_mm = 0.0;
  double aspect_ratio = 0.0;  ///< >= 1 (long side / short side)
  bool feasible = false;
  std::string verdict;

  Capacity total_memory() const;
};

/// Arrange the modules and logic on a die and judge feasibility.
ChipPlan plan_chip(const ChipSpec& spec);

}  // namespace edsim::modulegen
