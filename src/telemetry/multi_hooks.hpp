#pragma once

#include <vector>

#include "dram/telemetry_hooks.hpp"

namespace edsim::telemetry {

/// Forwards every probe to a list of hooks, so one controller can feed a
/// RequestTracer and an IntervalReporter (and anything else) at once —
/// `Controller::attach_telemetry` takes a single pointer by design, to
/// keep the disabled path one null check.
class FanoutHooks final : public dram::TelemetryHooks {
 public:
  void add(dram::TelemetryHooks* hooks) {
    if (hooks != nullptr) hooks_.push_back(hooks);
  }
  bool empty() const { return hooks_.empty(); }

  void on_request_enqueued(const dram::Request& req,
                           const dram::Coordinates& coord,
                           std::uint64_t cycle) override {
    for (auto* h : hooks_) h->on_request_enqueued(req, coord, cycle);
  }
  void on_request_issued(const dram::Request& req,
                         const dram::Coordinates& coord,
                         std::uint64_t cycle) override {
    for (auto* h : hooks_) h->on_request_issued(req, coord, cycle);
  }
  void on_request_data(const dram::Request& req, std::uint64_t data_start,
                       std::uint64_t data_end) override {
    for (auto* h : hooks_) h->on_request_data(req, data_start, data_end);
  }
  void on_request_complete(const dram::Request& req,
                           std::uint64_t cycle) override {
    for (auto* h : hooks_) h->on_request_complete(req, cycle);
  }
  void on_command(const dram::CommandRecord& rec) override {
    for (auto* h : hooks_) h->on_command(rec);
  }
  void on_cycle_advance(const dram::TickSample& sample,
                        const dram::ControllerStats& stats) override {
    for (auto* h : hooks_) h->on_cycle_advance(sample, stats);
  }
  void on_bulk_advance(std::uint64_t from, const dram::TickSample& sample,
                       const dram::ControllerStats& stats) override {
    for (auto* h : hooks_) h->on_bulk_advance(from, sample, stats);
  }

 private:
  std::vector<dram::TelemetryHooks*> hooks_;
};

}  // namespace edsim::telemetry
