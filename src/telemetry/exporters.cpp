#include "telemetry/exporters.hpp"

#include "dram/command_log.hpp"
#include "telemetry/interval.hpp"
#include "telemetry/trace.hpp"

namespace edsim::telemetry {

namespace {
constexpr unsigned kCommandTrack = 0;
constexpr unsigned kReliabilityTrack = 100;
}  // namespace

void export_command_log(const dram::CommandLog& log, TraceSink& sink,
                        unsigned process) {
  sink.set_track_name(process, kCommandTrack, "command bus");
  for (const dram::CommandRecord& rec : log.records()) {
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kInstant;
    ev.category = "command";
    ev.process = process;
    ev.track = kCommandTrack;
    ev.name = dram::to_string(rec.cmd);
    ev.cycle = rec.cycle;
    ev.args = {arg_u64("bank", rec.bank)};
    if (rec.cmd == dram::Command::kActivate) {
      ev.args.push_back(arg_u64("row", rec.row));
    }
    if (rec.auto_precharge) ev.args.push_back(arg_str("ap", "1"));
    sink.emit(ev);
  }
}

void export_reliability_events(
    const std::vector<reliability::ReliabilityEvent>& events, TraceSink& sink,
    unsigned process) {
  sink.set_track_name(process, kReliabilityTrack, "reliability");
  for (const reliability::ReliabilityEvent& e : events) {
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kInstant;
    ev.category = "reliability";
    ev.process = process;
    ev.track = kReliabilityTrack;
    ev.name = reliability::to_string(e.kind);
    ev.cycle = e.cycle;
    ev.args = {arg_u64("bank", e.bank), arg_u64("row", e.row),
               arg_u64("bit", e.bit)};
    sink.emit(ev);
  }
}

std::function<void(const reliability::ReliabilityEvent&)>
make_interval_observer(IntervalReporter& reporter) {
  return [&reporter](const reliability::ReliabilityEvent& e) {
    using RC = IntervalReporter::ReliabilityClass;
    RC cls = RC::kInjected;
    std::uint64_t count = 1;
    switch (e.kind) {
      case reliability::EventKind::kInject:
        cls = RC::kInjected;
        break;
      case reliability::EventKind::kDemandCorrect:
      case reliability::EventKind::kScrubCorrect:
      case reliability::EventKind::kWriteRepair:
        cls = RC::kCorrected;
        break;
      case reliability::EventKind::kUncorrectable:
        cls = RC::kUncorrected;
        break;
      case reliability::EventKind::kRemap:
      case reliability::EventKind::kRetire:
        cls = RC::kRemap;
        break;
      case reliability::EventKind::kNeighborRefresh:
        cls = RC::kNeighbor;
        break;
      case reliability::EventKind::kBinSweep:
        // The sweep event's bit field carries the rows refreshed by the op.
        cls = RC::kMaintenance;
        count = e.bit ? e.bit : 1;
        break;
    }
    reporter.note_reliability_event(e.cycle, cls, count);
  };
}

}  // namespace edsim::telemetry
