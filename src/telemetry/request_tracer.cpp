#include "telemetry/request_tracer.hpp"

#include <cstdio>

namespace edsim::telemetry {

namespace {
constexpr unsigned kCommandTrack = 0;

std::string request_label(const dram::Request& req) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s 0x%llx",
                req.type == dram::AccessType::kRead ? "R" : "W",
                static_cast<unsigned long long>(req.addr));
  return buf;
}
}  // namespace

RequestTracer::RequestTracer(TraceSink& sink, unsigned process,
                             const std::string& channel_name)
    : sink_(sink), process_(process) {
  sink_.set_process_name(process_, channel_name);
  sink_.set_track_name(process_, kCommandTrack, "command bus");
}

unsigned RequestTracer::client_track(unsigned client_id) {
  const unsigned track = 1 + client_id;
  if (client_id < 64 && (named_tracks_ & (1ull << client_id)) == 0) {
    named_tracks_ |= 1ull << client_id;
    sink_.set_track_name(process_, track,
                         "client " + std::to_string(client_id) + " requests");
  }
  return track;
}

void RequestTracer::on_request_enqueued(const dram::Request& req,
                                        const dram::Coordinates& coord,
                                        std::uint64_t cycle) {
  Pending p;
  p.arrival = cycle;
  p.bank = coord.bank;
  p.row = coord.row;
  pending_[req.id] = p;
}

void RequestTracer::on_request_issued(const dram::Request& req,
                                      const dram::Coordinates& /*coord*/,
                                      std::uint64_t cycle) {
  const auto it = pending_.find(req.id);
  if (it == pending_.end()) return;  // attached mid-flight
  it->second.issue = cycle;
  it->second.issued = true;
}

void RequestTracer::on_request_complete(const dram::Request& req,
                                        std::uint64_t cycle) {
  const auto it = pending_.find(req.id);
  if (it == pending_.end()) return;
  const Pending p = it->second;
  pending_.erase(it);
  const unsigned track = client_track(req.client_id);

  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kSlice;
  ev.category = "request";
  ev.process = process_;
  ev.track = track;
  ev.name = request_label(req);
  ev.cycle = p.arrival;
  ev.duration = cycle - p.arrival;
  ev.args = {arg_u64("id", req.id), arg_u64("bank", p.bank),
             arg_u64("row", p.row), arg_u64("arrival", p.arrival),
             arg_u64("done", req.done_cycle)};
  if (req.ecc_corrected) ev.args.push_back(arg_str("ecc", "corrected"));
  if (req.data_error) ev.args.push_back(arg_str("ecc", "uncorrectable"));
  sink_.emit(ev);

  if (p.issued) {
    TraceEvent queued;
    queued.phase = TraceEvent::Phase::kSlice;
    queued.category = "lifecycle";
    queued.process = process_;
    queued.track = track;
    queued.name = "queued";
    queued.cycle = p.arrival;
    queued.duration = p.issue - p.arrival;
    sink_.emit(queued);

    TraceEvent xfer;
    xfer.phase = TraceEvent::Phase::kSlice;
    xfer.category = "lifecycle";
    xfer.process = process_;
    xfer.track = track;
    xfer.name = "xfer";
    xfer.cycle = p.issue;
    xfer.duration = cycle - p.issue;
    sink_.emit(xfer);
  }
  ++requests_traced_;
}

void RequestTracer::on_command(const dram::CommandRecord& rec) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.category = "command";
  ev.process = process_;
  ev.track = kCommandTrack;
  ev.name = dram::to_string(rec.cmd);
  ev.cycle = rec.cycle;
  ev.args = {arg_u64("bank", rec.bank)};
  if (rec.cmd == dram::Command::kActivate) {
    ev.args.push_back(arg_u64("row", rec.row));
  }
  if (rec.auto_precharge) ev.args.push_back(arg_str("ap", "1"));
  sink_.emit(ev);
}

}  // namespace edsim::telemetry
