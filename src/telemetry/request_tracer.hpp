#pragma once

#include <cstdint>
#include <unordered_map>

#include "dram/telemetry_hooks.hpp"
#include "telemetry/trace.hpp"

namespace edsim::telemetry {

/// Turns the controller's request-lifecycle probes into Perfetto-ready
/// trace slices. Track layout inside process `process` (one process per
/// channel):
///
///     track 0            command bus (instant per ACT/PRE/RD/WR/REF)
///     track 1 + client   request slices for that client:
///                          "R 0x..." / "W 0x..."  arrival -> done
///                            "queued"               arrival -> issue
///                            "xfer"                 issue -> done
///
/// The nested slices use Chrome's ts/dur containment nesting, so one
/// request renders as a lifecycle stack. Attach with
/// `Controller::attach_telemetry` (or through the front ends).
class RequestTracer final : public dram::TelemetryHooks {
 public:
  RequestTracer(TraceSink& sink, unsigned process = 0,
                const std::string& channel_name = "channel0");

  void on_request_enqueued(const dram::Request& req,
                           const dram::Coordinates& coord,
                           std::uint64_t cycle) override;
  void on_request_issued(const dram::Request& req,
                         const dram::Coordinates& coord,
                         std::uint64_t cycle) override;
  void on_request_complete(const dram::Request& req,
                           std::uint64_t cycle) override;
  void on_command(const dram::CommandRecord& rec) override;

  std::uint64_t requests_traced() const { return requests_traced_; }

 private:
  struct Pending {
    std::uint64_t arrival = 0;
    std::uint64_t issue = 0;
    unsigned bank = 0;
    unsigned row = 0;
    bool issued = false;
  };

  unsigned client_track(unsigned client_id);

  TraceSink& sink_;
  unsigned process_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t named_tracks_ = 0;  ///< bitmap of client tracks named so far
  std::uint64_t requests_traced_ = 0;
};

}  // namespace edsim::telemetry
