#include "telemetry/trace.hpp"

#include <cstdio>
#include <ostream>

namespace edsim::telemetry {

TraceArg arg_str(std::string name, std::string value) {
  return TraceArg{std::move(name), std::move(value), true};
}

TraceArg arg_u64(std::string name, std::uint64_t value) {
  return TraceArg{std::move(name), std::to_string(value), false};
}

TraceArg arg_double(std::string name, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return TraceArg{std::move(name), buf, false};
}

namespace {

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out << buf;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

void json_number(std::ostream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out << buf;
}

}  // namespace

// --- ChromeTraceSink --------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& out, Frequency clock)
    : out_(out), clock_(clock) {
  out_ << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
}

ChromeTraceSink::~ChromeTraceSink() { finish(); }

void ChromeTraceSink::begin_event() {
  if (!first_) out_ << ",";
  first_ = false;
  out_ << "\n";
}

void ChromeTraceSink::write_args(const std::vector<TraceArg>& args) {
  out_ << ", \"args\": {";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out_ << ", ";
    first = false;
    json_string(out_, a.name);
    out_ << ": ";
    if (a.quoted) {
      json_string(out_, a.text);
    } else {
      out_ << a.text;
    }
  }
  out_ << "}";
}

void ChromeTraceSink::emit(const TraceEvent& ev) {
  begin_event();
  out_ << "{\"name\": ";
  json_string(out_, ev.name);
  out_ << ", \"cat\": ";
  json_string(out_, ev.category.empty() ? std::string("edsim") : ev.category);
  out_ << ", \"ph\": \"";
  switch (ev.phase) {
    case TraceEvent::Phase::kSlice: out_ << "X"; break;
    case TraceEvent::Phase::kInstant: out_ << "i"; break;
    case TraceEvent::Phase::kCounter: out_ << "C"; break;
  }
  out_ << "\", \"ts\": ";
  json_number(out_, ts_us(ev.cycle));
  if (ev.phase == TraceEvent::Phase::kSlice) {
    out_ << ", \"dur\": ";
    json_number(out_, ts_us(ev.cycle + ev.duration) - ts_us(ev.cycle));
  }
  if (ev.phase == TraceEvent::Phase::kInstant) out_ << ", \"s\": \"t\"";
  out_ << ", \"pid\": " << ev.process << ", \"tid\": " << ev.track;
  write_args(ev.args);
  out_ << "}";
  ++events_;
}

void ChromeTraceSink::set_process_name(unsigned process,
                                       const std::string& name) {
  begin_event();
  out_ << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << process
       << ", \"tid\": 0, \"args\": {\"name\": ";
  json_string(out_, name);
  out_ << "}}";
}

void ChromeTraceSink::set_track_name(unsigned process, unsigned track,
                                     const std::string& name) {
  begin_event();
  out_ << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << process
       << ", \"tid\": " << track << ", \"args\": {\"name\": ";
  json_string(out_, name);
  out_ << "}}";
}

void ChromeTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  out_ << "\n]}\n";
  out_.flush();
}

// --- CsvTraceSink -----------------------------------------------------------

CsvTraceSink::CsvTraceSink(std::ostream& out) : out_(out) {
  out_ << "cycle,duration_cycles,phase,category,name,process,track,args\n";
}

CsvTraceSink::~CsvTraceSink() { finish(); }

void CsvTraceSink::emit(const TraceEvent& ev) {
  const char* phase = "instant";
  if (ev.phase == TraceEvent::Phase::kSlice) phase = "slice";
  if (ev.phase == TraceEvent::Phase::kCounter) phase = "counter";
  out_ << ev.cycle << "," << ev.duration << "," << phase << ","
       << ev.category << "," << ev.name << "," << ev.process << ","
       << ev.track << ",";
  bool first = true;
  for (const TraceArg& a : ev.args) {
    if (!first) out_ << ";";
    first = false;
    out_ << a.name << "=" << a.text;
  }
  out_ << "\n";
  ++events_;
}

void CsvTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  out_.flush();
}

}  // namespace edsim::telemetry
