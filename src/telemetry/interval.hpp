#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "dram/telemetry_hooks.hpp"

namespace edsim::telemetry {

class TraceSink;

/// One per-interval row of the time series: counter deltas over
/// [start_cycle, end_cycle) plus the instantaneous channel state at the
/// closing boundary. This is what turns the paper's sustained-vs-peak
/// bandwidth claims into plottable curves instead of end-of-run scalars.
struct IntervalSample {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t activations = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t busy_cycles = 0;       ///< data-bus busy
  std::uint64_t powerdown_cycles = 0;  ///< power-state residency
  std::uint32_t queue_depth = 0;       ///< at end_cycle
  std::uint32_t open_banks = 0;        ///< at end_cycle
  // Reliability events binned by their exact cycle (fed by the manager's
  // event observer, so fast-forwarded stretches bin identically).
  std::uint64_t injected = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrected = 0;
  std::uint64_t remaps = 0;
  std::uint64_t maint_rows = 0;          ///< rows swept by bin maintenance
  std::uint64_t neighbor_refreshes = 0;  ///< RowHammer victim refreshes

  bool operator==(const IntervalSample&) const = default;

  std::uint64_t cycles() const { return end_cycle - start_cycle; }
  double bandwidth_gbyte_s(Frequency clock) const;
  double page_hit_rate() const;
  double bus_utilization() const;
  double powerdown_fraction() const;
};

/// Emits one IntervalSample every `interval_cycles` DRAM clocks, fed by
/// the controller's telemetry probes. Works identically under per-cycle
/// ticking and event-driven fast-forward: when a bulk advance skips over
/// one or more interval boundaries, the reporter synthesizes the boundary
/// samples exactly — during a quiet stretch every statistic is frozen
/// except the cycle count and (linearly) power-down residency, so the
/// synthesized rows are bit-identical to the per-cycle ones. The
/// equivalence is pinned by tests/test_telemetry.cpp.
class IntervalReporter final : public dram::TelemetryHooks {
 public:
  explicit IntervalReporter(std::uint64_t interval_cycles);

  void on_cycle_advance(const dram::TickSample& sample,
                        const dram::ControllerStats& stats) override;
  void on_bulk_advance(std::uint64_t from, const dram::TickSample& sample,
                       const dram::ControllerStats& stats) override;

  /// Reliability-event probe (wire via
  /// ReliabilityManager::set_event_observer, e.g. through
  /// make_interval_observer in telemetry/exporters.hpp). `cycle` is the
  /// event's exact cycle, which may lie inside a not-yet-emitted interval.
  enum class ReliabilityClass {
    kInjected,
    kCorrected,
    kUncorrected,
    kRemap,
    kMaintenance,  ///< bin-sweep rows (count = rows in the op)
    kNeighbor,     ///< RowHammer neighbor refreshes
  };
  void note_reliability_event(std::uint64_t cycle, ReliabilityClass cls,
                              std::uint64_t count = 1);

  /// Close the trailing partial interval (no-op when empty). Call after
  /// the run; the reporter stays attachable for a follow-up window.
  void finish();

  std::uint64_t interval_cycles() const { return interval_; }
  const std::vector<IntervalSample>& samples() const { return samples_; }

  /// The time series as CSV (one row per interval, derived rates
  /// included). `clock` converts cycles to ms and bandwidth to Gbyte/s.
  void write_csv(std::ostream& out, Frequency clock) const;

  /// Replay the series into a trace sink as Perfetto counter tracks
  /// (bandwidth, page-hit rate, queue depth, power-down residency).
  void emit_counters(TraceSink& sink, Frequency clock,
                     unsigned process = 0) const;

 private:
  /// Monotone counters mirrored out of ControllerStats.
  struct Totals {
    std::uint64_t reads = 0, writes = 0, bytes = 0;
    std::uint64_t row_hits = 0, row_misses = 0, row_conflicts = 0;
    std::uint64_t activations = 0, precharges = 0, refreshes = 0;
    std::uint64_t busy_cycles = 0, powerdown_cycles = 0;
  };
  struct EventBin {
    std::uint64_t injected = 0, corrected = 0, uncorrected = 0, remaps = 0;
    std::uint64_t maint_rows = 0, neighbor_refreshes = 0;
  };

  static Totals extract(const dram::ControllerStats& stats);
  void emit_boundary(std::uint64_t boundary, const Totals& at_boundary,
                     std::uint32_t queue_depth, std::uint32_t open_banks);

  std::uint64_t interval_;
  std::uint64_t next_boundary_;
  std::uint64_t last_emitted_ = 0;  ///< start of the open interval
  Totals baseline_;                 ///< totals at last_emitted_
  Totals last_totals_;              ///< totals at the last probe
  dram::TickSample last_tick_;      ///< state at the last probe
  std::map<std::uint64_t, EventBin> pending_events_;  ///< by interval index
  std::vector<IntervalSample> samples_;
};

}  // namespace edsim::telemetry
