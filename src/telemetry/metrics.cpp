#include "telemetry/metrics.hpp"

#include <ostream>

#include "common/error.hpp"
#include "dram/controller.hpp"
#include "dram/multi_channel.hpp"

namespace edsim::telemetry {

Histogram& MetricRegistry::histogram(const std::string& name,
                                     double bin_width, std::size_t bins) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(bin_width, bins)).first;
  } else {
    require(it->second.bin_width() == bin_width &&
                it->second.bins().size() == bins + 1,
            "metric registry: histogram '" + name +
                "' re-declared with a different shape");
  }
  return it->second;
}

const Counter* MetricRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricRegistry::find_histogram(
    const std::string& name) const {
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void MetricRegistry::merge(const MetricRegistry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].add(c.value());
  for (const auto& [name, g] : o.gauges_) {
    if (g.is_set()) gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : o.hists_) {
    const auto it = hists_.find(name);
    if (it == hists_.end()) {
      hists_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

void MetricRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

void MetricRegistry::write_csv(std::ostream& out) const {
  out << "kind,name,value\n";
  for (const auto& [name, c] : counters_) {
    out << "counter," << name << "," << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge," << name << "," << g.value() << "\n";
  }
  for (const auto& [name, h] : hists_) {
    out << "histogram," << name << ".count," << h.count() << "\n";
    out << "histogram," << name << ".p50," << h.percentile(0.50) << "\n";
    out << "histogram," << name << ".p99," << h.percentile(0.99) << "\n";
  }
}

namespace {
void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << ch;
    }
  }
  out << '"';
}
}  // namespace

void MetricRegistry::write_json(std::ostream& out) const {
  out << "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
  };
  for (const auto& [name, c] : counters_) {
    sep();
    json_string(out, name);
    out << ": " << c.value();
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    json_string(out, name);
    out << ": " << g.value();
  }
  for (const auto& [name, h] : hists_) {
    sep();
    json_string(out, name);
    out << ": {\"count\": " << h.count() << ", \"p50\": " << h.percentile(0.5)
        << ", \"p99\": " << h.percentile(0.99) << "}";
  }
  out << "\n}\n";
}

void export_controller_stats(const dram::ControllerStats& stats,
                             const MetricScope& scope) {
  scope.counter("cycles").add(stats.cycles);
  scope.counter("reads").add(stats.reads);
  scope.counter("writes").add(stats.writes);
  scope.counter("row_hits").add(stats.row_hits);
  scope.counter("row_misses").add(stats.row_misses);
  scope.counter("row_conflicts").add(stats.row_conflicts);
  scope.counter("activations").add(stats.activations);
  scope.counter("precharges").add(stats.precharges);
  scope.counter("refreshes").add(stats.refreshes);
  scope.counter("bytes_transferred").add(stats.bytes_transferred);
  scope.counter("data_bus_busy_cycles").add(stats.data_bus_busy_cycles);
  scope.counter("powerdown_cycles").add(stats.powerdown_cycles);
  scope.counter("redirected_requests").add(stats.redirected_requests);
  scope.counter("watchdog_retries").add(stats.watchdog_retries);
  const MetricScope rel = scope.scope("reliability");
  rel.counter("injected").add(stats.reliability.injected);
  rel.counter("corrected").add(stats.reliability.corrected);
  rel.counter("uncorrected").add(stats.reliability.uncorrected);
  rel.counter("remapped").add(stats.reliability.remapped);
  scope.gauge("row_hit_rate").set(stats.row_hit_rate());
  scope.gauge("data_bus_utilization").set(stats.data_bus_utilization());
  scope.gauge("powerdown_fraction").set(stats.powerdown_fraction());
  scope.gauge("read_latency_mean_cycles").set(stats.read_latency.mean());
  scope.gauge("write_latency_mean_cycles").set(stats.write_latency.mean());
  scope.gauge("queue_occupancy_mean").set(stats.queue_occupancy.mean());
}

void export_multi_channel_stats(const dram::MultiChannel& mc,
                                const MetricScope& scope) {
  for (unsigned i = 0; i < mc.channels(); ++i) {
    MetricRegistry per_channel;
    const MetricScope mirror(per_channel, scope.prefix());
    export_controller_stats(mc.channel(i).stats(),
                            mirror.scope("channel" + std::to_string(i)));
    scope.registry().merge(per_channel);
  }
  export_controller_stats(mc.combined_stats(), scope.scope("combined"));
}

}  // namespace edsim::telemetry
