#pragma once

#include <functional>
#include <vector>

#include "reliability/manager.hpp"

namespace edsim::dram {
class CommandLog;
}

namespace edsim::telemetry {

class TraceSink;
class IntervalReporter;

/// Replay a captured CommandLog into a trace sink (instant events on the
/// command-bus track). Post-hoc alternative to attaching a RequestTracer
/// live; a ring-capped log replays only its retained window.
void export_command_log(const dram::CommandLog& log, TraceSink& sink,
                        unsigned process = 0);

/// Replay reliability events as instants on a dedicated "reliability"
/// track (track 100) of `process`.
void export_reliability_events(const std::vector<reliability::ReliabilityEvent>& events,
                               TraceSink& sink, unsigned process = 0);

/// Adapter for ReliabilityManager::set_event_observer: bins each event
/// into `reporter` by its exact cycle. Classification: inject -> injected;
/// demand/scrub correct + write repair -> corrected; uncorrectable ->
/// uncorrected; remap/retire -> remaps.
std::function<void(const reliability::ReliabilityEvent&)> make_interval_observer(
    IntervalReporter& reporter);

}  // namespace edsim::telemetry
