#include "telemetry/progress.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace edsim::telemetry {

ProgressLog::ProgressLog(std::ostream* out, std::vector<std::string> columns)
    : out_(out), columns_(std::move(columns)) {
  widths_.reserve(columns_.size());
  for (const auto& c : columns_) {
    widths_.push_back(std::max<std::size_t>(c.size(), 9));
  }
}

void ProgressLog::emit(const std::vector<std::uint64_t>& values) {
  if (!header_done_) {
    header_done_ = true;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      *out_ << (i ? "  " : "") << std::setw(static_cast<int>(widths_[i]))
            << columns_[i];
    }
    *out_ << '\n';
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const std::uint64_t v = i < values.size() ? values[i] : 0;
    *out_ << (i ? "  " : "") << std::setw(static_cast<int>(widths_[i])) << v;
  }
  *out_ << '\n';
}

void ProgressLog::row(const std::vector<std::uint64_t>& values) {
  if (out_ == nullptr) return;
  emit(values);
}

void ProgressLog::finish(const std::vector<std::uint64_t>& values) {
  if (out_ == nullptr) return;
  emit(values);
  out_->flush();
}

}  // namespace edsim::telemetry
