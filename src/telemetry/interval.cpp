#include "telemetry/interval.hpp"

#include <ostream>

#include "dram/controller.hpp"
#include "telemetry/trace.hpp"

namespace edsim::telemetry {

double IntervalSample::bandwidth_gbyte_s(Frequency clock) const {
  if (cycles() == 0) return 0.0;
  const double seconds = static_cast<double>(cycles()) / clock.hz();
  return static_cast<double>(bytes) / seconds / 1e9;
}

double IntervalSample::page_hit_rate() const {
  const std::uint64_t total = row_hits + row_misses + row_conflicts;
  return total ? static_cast<double>(row_hits) / static_cast<double>(total)
               : 0.0;
}

double IntervalSample::bus_utilization() const {
  return cycles() ? static_cast<double>(busy_cycles) /
                        static_cast<double>(cycles())
                  : 0.0;
}

double IntervalSample::powerdown_fraction() const {
  return cycles() ? static_cast<double>(powerdown_cycles) /
                        static_cast<double>(cycles())
                  : 0.0;
}

IntervalReporter::IntervalReporter(std::uint64_t interval_cycles)
    : interval_(interval_cycles ? interval_cycles : 1), next_boundary_(interval_) {}

IntervalReporter::Totals IntervalReporter::extract(
    const dram::ControllerStats& stats) {
  Totals t;
  t.reads = stats.reads;
  t.writes = stats.writes;
  t.bytes = stats.bytes_transferred;
  t.row_hits = stats.row_hits;
  t.row_misses = stats.row_misses;
  t.row_conflicts = stats.row_conflicts;
  t.activations = stats.activations;
  t.precharges = stats.precharges;
  t.refreshes = stats.refreshes;
  t.busy_cycles = stats.data_bus_busy_cycles;
  t.powerdown_cycles = stats.powerdown_cycles;
  return t;
}

void IntervalReporter::emit_boundary(std::uint64_t boundary,
                                     const Totals& at_boundary,
                                     std::uint32_t queue_depth,
                                     std::uint32_t open_banks) {
  IntervalSample s;
  s.start_cycle = last_emitted_;
  s.end_cycle = boundary;
  s.reads = at_boundary.reads - baseline_.reads;
  s.writes = at_boundary.writes - baseline_.writes;
  s.bytes = at_boundary.bytes - baseline_.bytes;
  s.row_hits = at_boundary.row_hits - baseline_.row_hits;
  s.row_misses = at_boundary.row_misses - baseline_.row_misses;
  s.row_conflicts = at_boundary.row_conflicts - baseline_.row_conflicts;
  s.activations = at_boundary.activations - baseline_.activations;
  s.precharges = at_boundary.precharges - baseline_.precharges;
  s.refreshes = at_boundary.refreshes - baseline_.refreshes;
  s.busy_cycles = at_boundary.busy_cycles - baseline_.busy_cycles;
  s.powerdown_cycles =
      at_boundary.powerdown_cycles - baseline_.powerdown_cycles;
  s.queue_depth = queue_depth;
  s.open_banks = open_banks;

  // Drain reliability events whose exact cycle falls in this interval.
  // Binning is by cycle / interval, so per-cycle and fast-forward runs
  // attribute every event to the same row.
  const std::uint64_t lo = last_emitted_ / interval_;
  const std::uint64_t hi = (boundary - 1) / interval_;
  for (auto it = pending_events_.lower_bound(lo);
       it != pending_events_.end() && it->first <= hi;) {
    s.injected += it->second.injected;
    s.corrected += it->second.corrected;
    s.uncorrected += it->second.uncorrected;
    s.remaps += it->second.remaps;
    s.maint_rows += it->second.maint_rows;
    s.neighbor_refreshes += it->second.neighbor_refreshes;
    it = pending_events_.erase(it);
  }

  samples_.push_back(s);
  last_emitted_ = boundary;
  baseline_ = at_boundary;
}

void IntervalReporter::on_cycle_advance(const dram::TickSample& sample,
                                        const dram::ControllerStats& stats) {
  last_totals_ = extract(stats);
  last_tick_ = sample;
  while (sample.cycle >= next_boundary_) {
    emit_boundary(next_boundary_, last_totals_, sample.queue_depth,
                  sample.open_banks);
    next_boundary_ += interval_;
  }
}

void IntervalReporter::on_bulk_advance(std::uint64_t from,
                                       const dram::TickSample& sample,
                                       const dram::ControllerStats& stats) {
  const Totals now = extract(stats);
  const std::uint64_t to = sample.cycle;
  const std::uint64_t span = to - from;
  // Across a skipped stretch only power-down residency accrues, and it
  // accrues at exactly 0 or 1 cycles per cycle — so boundary values
  // interpolate without rounding and match the per-cycle run bit for bit.
  const std::uint64_t pd_delta =
      now.powerdown_cycles - last_totals_.powerdown_cycles;
  while (next_boundary_ <= to) {
    Totals at = last_totals_;
    if (span != 0) {
      at.powerdown_cycles += pd_delta * (next_boundary_ - from) / span;
    }
    emit_boundary(next_boundary_, at, sample.queue_depth, sample.open_banks);
    next_boundary_ += interval_;
  }
  last_totals_ = now;
  last_tick_ = sample;
}

void IntervalReporter::note_reliability_event(std::uint64_t cycle,
                                              ReliabilityClass cls,
                                              std::uint64_t count) {
  EventBin& bin = pending_events_[cycle / interval_];
  switch (cls) {
    case ReliabilityClass::kInjected: bin.injected += count; break;
    case ReliabilityClass::kCorrected: bin.corrected += count; break;
    case ReliabilityClass::kUncorrected: bin.uncorrected += count; break;
    case ReliabilityClass::kRemap: bin.remaps += count; break;
    case ReliabilityClass::kMaintenance: bin.maint_rows += count; break;
    case ReliabilityClass::kNeighbor: bin.neighbor_refreshes += count; break;
  }
}

void IntervalReporter::finish() {
  if (last_tick_.cycle > last_emitted_) {
    emit_boundary(last_tick_.cycle, last_totals_, last_tick_.queue_depth,
                  last_tick_.open_banks);
    next_boundary_ = (last_tick_.cycle / interval_ + 1) * interval_;
  }
}

void IntervalReporter::write_csv(std::ostream& out, Frequency clock) const {
  out << "interval,start_cycle,end_cycle,start_ms,reads,writes,bytes,"
         "bandwidth_gbyte_s,row_hits,row_misses,row_conflicts,page_hit_rate,"
         "activations,precharges,refreshes,bus_utilization,"
         "powerdown_fraction,queue_depth,open_banks,injected,corrected,"
         "uncorrected,remaps,maint_rows,neighbor_refreshes\n";
  std::size_t idx = 0;
  for (const IntervalSample& s : samples_) {
    const double start_ms =
        static_cast<double>(s.start_cycle) * clock.period_ns() / 1e6;
    out << idx++ << "," << s.start_cycle << "," << s.end_cycle << ","
        << start_ms << "," << s.reads << "," << s.writes << "," << s.bytes
        << "," << s.bandwidth_gbyte_s(clock) << "," << s.row_hits << ","
        << s.row_misses << "," << s.row_conflicts << "," << s.page_hit_rate()
        << "," << s.activations << "," << s.precharges << "," << s.refreshes
        << "," << s.bus_utilization() << "," << s.powerdown_fraction() << ","
        << s.queue_depth << "," << s.open_banks << "," << s.injected << ","
        << s.corrected << "," << s.uncorrected << "," << s.remaps << ","
        << s.maint_rows << "," << s.neighbor_refreshes << "\n";
  }
}

void IntervalReporter::emit_counters(TraceSink& sink, Frequency clock,
                                     unsigned process) const {
  for (const IntervalSample& s : samples_) {
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kCounter;
    ev.category = "interval";
    ev.process = process;
    ev.cycle = s.start_cycle;

    ev.name = "bandwidth (Gbyte/s)";
    ev.args = {arg_double("value", s.bandwidth_gbyte_s(clock))};
    sink.emit(ev);

    ev.name = "page hit rate";
    ev.args = {arg_double("value", s.page_hit_rate())};
    sink.emit(ev);

    ev.name = "queue depth";
    ev.args = {arg_u64("value", s.queue_depth)};
    sink.emit(ev);

    ev.name = "power-down fraction";
    ev.args = {arg_double("value", s.powerdown_fraction())};
    sink.emit(ev);
  }
}

}  // namespace edsim::telemetry
