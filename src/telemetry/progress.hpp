#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace edsim::telemetry {

/// Incremental fixed-width progress rows for long-running batch jobs, in
/// the IntervalReporter spirit but for coordinator-side counters instead
/// of DRAM statistics: a header line once, then one row per report. The
/// batch front end emits a row every progress-stride completions, so a
/// multi-thousand-point sweep shows queued/deduped/in-flight/done moving
/// while workers stream results back.
class ProgressLog {
 public:
  /// Rows go to `out`; nullptr disables the log (row() becomes free).
  ProgressLog(std::ostream* out, std::vector<std::string> columns);

  bool enabled() const { return out_ != nullptr; }

  /// Emit one row (header first, on the first call). Values align with
  /// the column list; missing trailing values print as 0.
  void row(const std::vector<std::uint64_t>& values);

  /// Emit a final row unconditionally (even mid-stride) and flush.
  void finish(const std::vector<std::uint64_t>& values);

 private:
  void emit(const std::vector<std::uint64_t>& values);

  std::ostream* out_;
  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
  bool header_done_ = false;
};

}  // namespace edsim::telemetry
