#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace edsim::telemetry {

/// One argument attached to a trace event. `quoted` selects JSON string
/// vs. bare-number rendering (CSV always prints `name=text`).
struct TraceArg {
  std::string name;
  std::string text;
  bool quoted = true;
};

TraceArg arg_str(std::string name, std::string value);
TraceArg arg_u64(std::string name, std::uint64_t value);
TraceArg arg_double(std::string name, double value);

/// One exportable trace event in simulator time (cycles). `process` maps
/// to a Perfetto process (one per channel), `track` to a thread within it
/// (command bus, one per client, reliability, counters...).
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kSlice,    ///< duration event: [cycle, cycle + duration)
    kInstant,  ///< point event
    kCounter,  ///< sampled value series (args carry the series values)
  };

  Phase phase = Phase::kInstant;
  std::string name;
  std::string category;
  std::uint64_t cycle = 0;
  std::uint64_t duration = 0;  ///< cycles; kSlice only
  unsigned process = 0;
  unsigned track = 0;
  std::vector<TraceArg> args;
};

/// Where trace events go. Implementations stream — events are rendered
/// as they arrive, so a capped CommandLog or a long soak never has to
/// buffer the whole trace in memory.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void emit(const TraceEvent& ev) = 0;

  /// Optional naming metadata for the track/process axes.
  virtual void set_process_name(unsigned /*process*/,
                                const std::string& /*name*/) {}
  virtual void set_track_name(unsigned /*process*/, unsigned /*track*/,
                              const std::string& /*name*/) {}

  /// Seal the output (close the JSON array, flush...). Idempotent;
  /// sinks also call it from their destructor.
  virtual void finish() {}

  std::uint64_t events_emitted() const { return events_; }

 protected:
  std::uint64_t events_ = 0;
};

/// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object form) —
/// loads in Perfetto / chrome://tracing. Cycles are converted to
/// microsecond timestamps with the DRAM clock, so slice widths read as
/// real time.
class ChromeTraceSink final : public TraceSink {
 public:
  ChromeTraceSink(std::ostream& out, Frequency clock);
  ~ChromeTraceSink() override;

  void emit(const TraceEvent& ev) override;
  void set_process_name(unsigned process, const std::string& name) override;
  void set_track_name(unsigned process, unsigned track,
                      const std::string& name) override;
  void finish() override;

 private:
  double ts_us(std::uint64_t cycle) const {
    return static_cast<double>(cycle) * clock_.period_ns() / 1000.0;
  }
  void begin_event();
  void write_args(const std::vector<TraceArg>& args);

  std::ostream& out_;
  Frequency clock_;
  bool first_ = true;
  bool finished_ = false;
};

/// Flat CSV: one event per row, cycle-stamped — for spreadsheet/pandas
/// consumption when Perfetto is overkill.
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& out);
  ~CsvTraceSink() override;

  void emit(const TraceEvent& ev) override;
  void finish() override;

 private:
  std::ostream& out_;
  bool finished_ = false;
};

}  // namespace edsim::telemetry
