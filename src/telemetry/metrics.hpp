#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace edsim::dram {
struct ControllerStats;
class MultiChannel;
}

namespace edsim::telemetry {

/// Monotone event count (requests, row hits, faults corrected...).
class Counter {
 public:
  void add(std::uint64_t k = 1) { value_ += k; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value (bandwidth, temperature, rate...).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    set_ = true;
  }
  double value() const { return value_; }
  bool is_set() const { return set_; }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// Named-metric store: counters, gauges, and fixed-bucket histograms,
/// hierarchically scoped by dotted names (`channel0.bank3.row_hits` —
/// build names with MetricScope). Snapshotable to CSV/JSON and mergeable:
/// the parallel Evaluator fills one registry per slot and merges them in
/// input order, so totals are identical at every EDSIM_THREADS.
///
/// Merge semantics: counters add; histograms add bin-wise (shapes must
/// match); gauges take the incoming value when it is set (merge order =
/// input order keeps this deterministic).
class MetricRegistry {
 public:
  /// Get-or-create. Names are arbitrary; use '.'-separated segments for
  /// hierarchy so exports group naturally.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name, double bin_width,
                       std::size_t bins);

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  void merge(const MetricRegistry& o);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + hists_.size();
  }
  void clear();

  /// `kind,name,value` rows (histograms add `.p50/.p99/.count` rows),
  /// sorted by name within each kind — a stable, diffable snapshot.
  void write_csv(std::ostream& out) const;
  /// One flat JSON object keyed by metric name.
  void write_json(std::ostream& out) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return hists_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> hists_;
};

/// Hierarchical name builder over a registry:
///
///     MetricScope ch(reg, "channel0");
///     ch.scope("bank3").counter("row_hits").add();   // channel0.bank3.row_hits
class MetricScope {
 public:
  MetricScope(MetricRegistry& reg, std::string prefix)
      : reg_(&reg), prefix_(std::move(prefix)) {}

  MetricScope scope(const std::string& name) const {
    return MetricScope(*reg_, qualify(name));
  }
  Counter& counter(const std::string& name) const {
    return reg_->counter(qualify(name));
  }
  Gauge& gauge(const std::string& name) const {
    return reg_->gauge(qualify(name));
  }
  Histogram& histogram(const std::string& name, double bin_width,
                       std::size_t bins) const {
    return reg_->histogram(qualify(name), bin_width, bins);
  }

  const std::string& prefix() const { return prefix_; }
  MetricRegistry& registry() const { return *reg_; }

 private:
  std::string qualify(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

  MetricRegistry* reg_;
  std::string prefix_;
};

/// Snapshot one channel's ControllerStats into scoped metrics (counters
/// for the monotone event counts, gauges for the derived rates). Call
/// once per run per scope — counters accumulate.
void export_controller_stats(const dram::ControllerStats& stats,
                             const MetricScope& scope);

/// Snapshot every channel of a MultiChannel under `scope` ("channel0",
/// "channel1", ...) plus the combined view under "combined". Each channel
/// is exported into its own scratch registry and folded in with
/// MetricRegistry::merge in channel-index order, so the result is
/// identical whether tick_until ran serial or fanned over the pool.
void export_multi_channel_stats(const dram::MultiChannel& mc,
                                const MetricScope& scope);

}  // namespace edsim::telemetry
