#pragma once

/// Umbrella header: the whole public API. Fine for applications; library
/// code should include the specific headers it uses.

// common
#include "common/error.hpp"     // IWYU pragma: export
#include "common/rng.hpp"       // IWYU pragma: export
#include "common/stats.hpp"     // IWYU pragma: export
#include "common/table.hpp"     // IWYU pragma: export
#include "common/units.hpp"     // IWYU pragma: export

// cycle-level DRAM channel
#include "dram/address_map.hpp"      // IWYU pragma: export
#include "dram/bank.hpp"             // IWYU pragma: export
#include "dram/command_log.hpp"      // IWYU pragma: export
#include "dram/config.hpp"           // IWYU pragma: export
#include "dram/controller.hpp"       // IWYU pragma: export
#include "dram/multi_channel.hpp"    // IWYU pragma: export
#include "dram/presets.hpp"          // IWYU pragma: export
#include "dram/protocol_checker.hpp" // IWYU pragma: export
#include "dram/refresh.hpp"          // IWYU pragma: export
#include "dram/request.hpp"          // IWYU pragma: export
#include "dram/scheduler.hpp"        // IWYU pragma: export
#include "dram/timing.hpp"           // IWYU pragma: export
#include "dram/trace_dump.hpp"       // IWYU pragma: export

// interface electricals and discrete-system composition
#include "phy/discrete_system.hpp"  // IWYU pragma: export
#include "phy/fill_frequency.hpp"   // IWYU pragma: export
#include "phy/interface_model.hpp"  // IWYU pragma: export

// power, thermal, retention, battery
#include "power/battery.hpp"       // IWYU pragma: export
#include "power/energy_model.hpp"  // IWYU pragma: export
#include "power/retention.hpp"     // IWYU pragma: export
#include "power/thermal.hpp"       // IWYU pragma: export

// memory clients and front ends
#include "clients/arbiter.hpp"       // IWYU pragma: export
#include "clients/client.hpp"        // IWYU pragma: export
#include "clients/extra_clients.hpp" // IWYU pragma: export
#include "clients/fifo_tracker.hpp"  // IWYU pragma: export
#include "clients/multi_system.hpp"  // IWYU pragma: export
#include "clients/system.hpp"        // IWYU pragma: export
#include "clients/trace_io.hpp"      // IWYU pragma: export

// module compiler, floorplanning, SRAM partitioning
#include "modulegen/building_block.hpp"  // IWYU pragma: export
#include "modulegen/floorplan.hpp"       // IWYU pragma: export
#include "modulegen/module_compiler.hpp" // IWYU pragma: export
#include "modulegen/sram.hpp"            // IWYU pragma: export

// test/yield/quality substrate
#include "bist/bist_controller.hpp" // IWYU pragma: export
#include "bist/faults.hpp"          // IWYU pragma: export
#include "bist/march.hpp"           // IWYU pragma: export
#include "bist/memory_array.hpp"    // IWYU pragma: export
#include "bist/quality.hpp"         // IWYU pragma: export
#include "bist/redundancy.hpp"      // IWYU pragma: export
#include "bist/test_economics.hpp"  // IWYU pragma: export
#include "bist/yield.hpp"           // IWYU pragma: export

// MPEG2 decoder memory model
#include "mpeg/decoder_model.hpp"  // IWYU pragma: export
#include "mpeg/frame_geometry.hpp" // IWYU pragma: export
#include "mpeg/memory_map.hpp"     // IWYU pragma: export
#include "mpeg/trace_gen.hpp"      // IWYU pragma: export

// processor-memory gap
#include "cpu/cache.hpp"          // IWYU pragma: export
#include "cpu/core_model.hpp"     // IWYU pragma: export
#include "cpu/memory_backend.hpp" // IWYU pragma: export
#include "cpu/trend.hpp"          // IWYU pragma: export

// design-space explorer
#include "core/advisor.hpp"       // IWYU pragma: export
#include "core/allocation.hpp"    // IWYU pragma: export
#include "core/business.hpp"      // IWYU pragma: export
#include "core/cost_model.hpp"    // IWYU pragma: export
#include "core/evaluator.hpp"     // IWYU pragma: export
#include "core/pareto.hpp"        // IWYU pragma: export
#include "core/system_config.hpp" // IWYU pragma: export
