// §2's "first market": a portable media device. Combines the pieces the
// paper says make eDRAM win in battery-powered products — on-chip
// interface energy, power-down residency during idle, and the advisor's
// rules of thumb — into one battery-life story.

#include <iostream>

#include "common/table.hpp"
#include "core/advisor.hpp"
#include "dram/controller.hpp"
#include "dram/presets.hpp"
#include "phy/discrete_system.hpp"
#include "phy/interface_model.hpp"
#include "power/battery.hpp"
#include "power/energy_model.hpp"

namespace {

using namespace edsim;

struct MemoryPower {
  double active_mw;
  double duty_cycled_mw;  ///< 10% duty cycle with power management
};

MemoryPower measure(bool embedded) {
  dram::DramConfig cfg = embedded
                             ? dram::presets::edram_module(8, 64, 4, 2048)
                             : dram::presets::sdram_pc100_64mbit();
  cfg.powerdown_enabled = true;
  cfg.powerdown_idle_cycles = 32;

  const phy::IoElectricals io =
      embedded ? phy::on_chip_wire() : phy::off_chip_board();
  const phy::InterfaceModel iface(cfg.interface_bits, cfg.clock, io);
  const power::DramPowerModel pm(power::core_energy_sdram_025um(),
                                 iface.energy_per_bit_j());

  // Same *work* for both systems: a paced decode stream at the given
  // byte rate (the player's job doesn't change with the memory choice).
  auto run = [&](double mbyte_s) {
    dram::Controller ctl(cfg);
    const double bytes_per_cycle = mbyte_s * 1e6 / cfg.clock.hz();
    const auto period = static_cast<int>(
        static_cast<double>(cfg.bytes_per_access()) / bytes_per_cycle);
    std::uint64_t addr = 0;
    for (int i = 0; i < 200'000; ++i) {
      if (i % period == 0 && !ctl.queue_full()) {
        dram::Request r;
        r.addr = addr;
        addr += cfg.bytes_per_access();
        ctl.enqueue(r);
      }
      ctl.tick();
      ctl.drain_completed();
    }
    return pm.evaluate(ctl.stats(), cfg).total_mw();
  };
  return {run(80.0), run(8.0)};
}

}  // namespace

int main() {
  using namespace edsim;
  std::cout << "Portable media player memory subsystem (§2: 'edram will "
               "find its way first into portable applications')\n";

  const MemoryPower edram = measure(true);
  const MemoryPower sdram = measure(false);

  Table t({"memory", "80 MB/s mW", "8 MB/s mW"});
  t.row().cell("embedded 8 Mbit (on-chip bus)").num(edram.active_mw, 1).num(
      edram.duty_cycled_mw, 1);
  t.row()
      .cell("discrete 64 Mbit SDRAM (board bus)")
      .num(sdram.active_mw, 1)
      .num(sdram.duty_cycled_mw, 1);
  t.print(std::cout,
          "Memory power at equal delivered decode rates (power-managed)");

  power::BatteryModel pack;
  pack.capacity_mwh = 4800.0;  // 2 AA-class cells
  const double system_mw = 450.0;
  const double edram_hours = pack.hours_at(system_mw + edram.active_mw);
  const double sdram_hours = pack.hours_at(system_mw + sdram.active_mw);
  std::cout << "playback time on a 4.8 Wh pack (450 mW system): eDRAM "
            << Table::fmt(edram_hours, 2) << " h vs discrete "
            << Table::fmt(sdram_hours, 2) << " h (+"
            << Table::fmt((edram_hours / sdram_hours - 1.0) * 100.0, 1)
            << "%)\n\n";

  // And the §2 advisor agrees this market adopts first.
  core::ApplicationProfile app;
  app.name = "portable media player";
  app.volume_k_units_per_year = 3000;
  app.product_lifetime_years = 2.0;
  app.memory = Capacity::mbit(8);
  app.bandwidth_gbyte_s = 0.3;
  app.portable = true;
  const auto verdict = core::Advisor{}.advise(app);
  std::cout << "advisor: " << (verdict.recommend_edram ? "eDRAM" : "discrete")
            << " (score " << Table::fmt(verdict.score, 1) << ")\n";
  for (const auto& r : verdict.reasons) std::cout << "  - " << r << "\n";
  return 0;
}
