// Quickstart: build an embedded DRAM channel, attach two memory clients,
// run a few hundred microseconds, and print what the paper calls the
// key system numbers — sustained vs. peak bandwidth, row-hit rate,
// latency, and interface power.

#include <iostream>
#include <memory>

#include "clients/system.hpp"
#include "common/table.hpp"
#include "dram/presets.hpp"
#include "phy/interface_model.hpp"
#include "power/energy_model.hpp"

int main() {
  using namespace edsim;

  // 1. An embedded module per the paper's §5 concept: 16 Mbit, 256-bit
  //    interface, 4 banks, 2 KB pages, 143 MHz.
  const dram::DramConfig cfg = dram::presets::edram_256bit_16mbit();
  std::cout << "Channel: " << cfg.describe() << "\n\n";

  // 2. Two clients: a frame-scan streamer and a random block reader.
  clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
  clients::StreamClient::Params sp;
  sp.length = 1 << 20;
  sp.burst_bytes = cfg.bytes_per_access();
  sp.period_cycles = 2;
  sys.add_client(std::make_unique<clients::StreamClient>(0, "scanout", sp));

  clients::RandomClient::Params rp;
  rp.base = 1 << 20;
  rp.length = 1 << 20;
  rp.burst_bytes = cfg.bytes_per_access();
  rp.seed = 7;
  sys.add_client(std::make_unique<clients::RandomClient>(1, "texture", rp));

  // 3. Run ~0.7 ms of memory time.
  sys.run(100'000);

  // 4. Report.
  const auto& st = sys.controller().stats();
  Table t({"metric", "value"});
  t.row().cell("peak bandwidth").cell(to_string(cfg.peak_bandwidth()));
  t.row().cell("sustained bandwidth").cell(to_string(sys.aggregate_bandwidth()));
  t.row().cell("bandwidth efficiency").num(sys.bandwidth_efficiency() * 100.0, 1);
  t.row().cell("row hit rate %").num(st.row_hit_rate() * 100.0, 1);
  t.row().cell("avg read latency (cycles)").num(st.read_latency.mean(), 1);
  t.row().cell("refreshes").integer(static_cast<long long>(st.refreshes));

  const phy::InterfaceModel io(cfg.interface_bits, cfg.clock,
                               phy::on_chip_wire());
  const power::DramPowerModel pm(power::core_energy_sdram_025um(),
                                 io.energy_per_bit_j());
  t.row().cell("memory power").cell(pm.evaluate(st, cfg).describe());
  t.print(std::cout, "edsim quickstart — embedded 16 Mbit / 256-bit module");

  for (std::size_t i = 0; i < sys.client_count(); ++i) {
    const auto& cs = sys.client_stats(i);
    std::cout << "client '" << sys.client(i).name() << "': " << cs.completed
              << " bursts, mean latency " << Table::fmt(cs.latency.mean(), 1)
              << " cycles, FIFO depth needed "
              << sys.fifo(i).required_depth_bytes() << " B\n";
  }
  return 0;
}
