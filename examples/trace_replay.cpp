// Replay a memory trace against a configurable channel and print the
// full statistics picture — the bread-and-butter workflow for a user
// bringing their own workload.
//
// Usage:
//   trace_replay [options] [trace-file]
//     --preset edram|sdram     base configuration (default edram)
//     --mbit N                 capacity in Mbit      (edram preset only)
//     --width BITS             interface width       (edram preset only)
//     --banks N --page BYTES   organization          (edram preset only)
//     --scheduler fcfs|frfcfs|readfirst
//     --policy open|closed
//     --binary PATH            also save the trace as binary .edtrc
//
// Input may be the text format (one record per line, `<cycle> <R|W>
// <address>`; '#' comments) or the binary `.edtrc` form — the loader
// auto-detects by magic. `--binary out.edtrc` converts the input and
// replays from the converted file, so the round trip is exercised in
// the same run. Without a file argument a built-in demo trace runs.

#include <fstream>
#include <iostream>
#include <memory>

#include "clients/compiled_trace.hpp"
#include "clients/system.hpp"
#include "clients/trace_io.hpp"
#include "common/args.hpp"
#include "common/table.hpp"
#include "dram/presets.hpp"
#include "dram/protocol_checker.hpp"

namespace {

constexpr const char* kDemoTrace = R"(# demo: a scanout burst, a copy loop, then scattered lookups
0    R 0x0000
1    R 0x0080
2    R 0x0100
3    R 0x0180
40   R 0x10000
42   W 0x20000
44   R 0x10080
46   W 0x20080
48   R 0x10100
50   W 0x20100
200  R 0x84210
220  R 0x3F2A0
240  R 0x71000
260  R 0x05A80
)";

}  // namespace

int main(int argc, char** argv) try {
  using namespace edsim;
  const Args args(argc, argv);

  dram::DramConfig cfg;
  if (args.get("preset", "edram") == "sdram") {
    cfg = dram::presets::sdram_pc100_64mbit();
  } else {
    cfg = dram::presets::edram_module(
        static_cast<unsigned>(args.get_u64("mbit", 16)),
        static_cast<unsigned>(args.get_u64("width", 64)),
        static_cast<unsigned>(args.get_u64("banks", 4)),
        static_cast<unsigned>(args.get_u64("page", 2048)));
  }
  const std::string sched = args.get("scheduler", "frfcfs");
  cfg.scheduler = sched == "fcfs" ? dram::SchedulerKind::kFcfs
                  : sched == "readfirst" ? dram::SchedulerKind::kReadFirst
                  : sched == "tdm"       ? dram::SchedulerKind::kTdm
                                         : dram::SchedulerKind::kFrFcfs;
  cfg.page_policy = args.get("policy", "open") == "closed"
                        ? dram::PagePolicy::kClosed
                        : dram::PagePolicy::kOpen;
  // Parse + compile the workload once into a shared immutable arena; the
  // replay client walks it zero-copy. Text or .edtrc input both work.
  std::unique_ptr<clients::ArenaReplayClient> client;
  if (!args.positional().empty()) {
    std::string path = args.positional().front();
    if (args.has("binary")) {
      const std::string out = args.get("binary", "");
      clients::save_trace_file_binary(out, clients::load_trace_auto(path));
      std::cout << "converted " << path << " -> " << out << " (.edtrc)\n";
      path = out;
    }
    client = std::make_unique<clients::TraceFileClient>(
        0, "trace", path, cfg.bytes_per_access());
    std::cout << "loaded " << client->trace()->size() << " records from "
              << path << (clients::is_binary_trace_file(path) ? " (binary)"
                                                              : " (text)")
              << ", arena " << client->trace()->arena_bytes() << " bytes\n";
  } else {
    client = std::make_unique<clients::ArenaReplayClient>(
        0, "trace", clients::compile_trace_records(
                        clients::parse_trace_text(kDemoTrace),
                        cfg.bytes_per_access()));
    std::cout << "no trace file given; running the built-in demo ("
              << client->trace()->size() << " records)\n";
  }
  std::cout << "channel: " << cfg.describe() << "\n\n";

  clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
  dram::CommandLog log;
  sys.controller().attach_command_log(&log);
  sys.add_client(std::move(client));
  sys.run_to_completion();

  const auto& st = sys.controller().stats();
  Table t({"metric", "value"});
  t.row().cell("cycles").integer(static_cast<long long>(st.cycles));
  t.row().cell("reads").integer(static_cast<long long>(st.reads));
  t.row().cell("writes").integer(static_cast<long long>(st.writes));
  t.row().cell("row hits").integer(static_cast<long long>(st.row_hits));
  t.row().cell("row misses").integer(static_cast<long long>(st.row_misses));
  t.row().cell("row conflicts").integer(
      static_cast<long long>(st.row_conflicts));
  t.row().cell("mean read latency (cyc)").num(st.read_latency.mean(), 1);
  t.row().cell("max read latency (cyc)").num(st.read_latency.max(), 0);
  t.row().cell("sustained").cell(
      to_string(st.sustained_bandwidth(cfg.clock)));
  t.print(std::cout, "Replay statistics");

  const auto violations = dram::ProtocolChecker(cfg).verify(log);
  std::cout << "protocol check: " << log.size() << " commands, "
            << violations.size() << " violations\n";
  for (const auto& v : violations) std::cout << "  " << v.describe() << "\n";
  return violations.empty() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
