// The §3 design space made executable: sweep integration style, process
// choice and interface width for a 16-Mbit application, evaluate each
// point (simulation + models), extract the cost/bandwidth/power Pareto
// front, and print the §2 advisor's verdicts for the paper's markets.

#include <iostream>

#include "common/args.hpp"
#include "common/table.hpp"
#include "core/advisor.hpp"
#include "core/evaluator.hpp"
#include "core/pareto.hpp"

int main(int argc, char** argv) {
  using namespace edsim;
  using namespace edsim::core;

  const Args args(argc, argv, {"cache-stats"});

  std::vector<SystemConfig> cfgs;
  for (const BaseProcess p :
       {BaseProcess::kDramBased, BaseProcess::kLogicBased,
        BaseProcess::kMerged}) {
    for (const unsigned width : {64u, 128u, 256u, 512u}) {
      SystemConfig s;
      s.name = std::string(to_string(p)) + "/" + std::to_string(width) + "b";
      s.integration = Integration::kEmbedded;
      s.process = p;
      s.required_memory = Capacity::mbit(16);
      s.interface_bits = width;
      s.banks = 4;
      s.page_bytes = 2048;
      cfgs.push_back(s);
    }
  }
  for (const unsigned width : {16u, 32u, 64u}) {
    SystemConfig s;
    s.name = "discrete/" + std::to_string(width) + "b";
    s.integration = Integration::kDiscrete;
    s.required_memory = Capacity::mbit(16);
    s.interface_bits = width;
    cfgs.push_back(s);
  }

  Evaluator ev;
  EvalWorkload w;
  w.demand_gbyte_s = 2.0;
  w.sim_cycles = 50'000;
  // Warm the memory system before measuring; variants sharing a channel
  // shape fan out from one checkpointed warm-up (visible in --cache-stats).
  w.warmup_cycles = 10'000;
  const auto metrics = ev.sweep(cfgs, w);

  // Re-score the same candidates, as a refinement loop would: every
  // point is now a memo hit, and the workload arenas compiled above are
  // shared rather than regenerated.
  ev.sweep(cfgs, w);
  std::cout << "workload cache: " << ev.workload_cache().entries()
            << " arenas (" << ev.workload_cache().arena_bytes()
            << " bytes), " << ev.workload_cache().hits()
            << " hits\nevaluation memo: " << ev.memo_entries()
            << " entries, " << ev.memo_hits() << " hits on re-sweep\n";

  // --cache-stats: the one-call counter snapshot across all three shared
  // caches (workload arenas, evaluation memo, warm-up checkpoints).
  if (args.has("cache-stats")) {
    const Evaluator::CacheStats cs = ev.cache_stats();
    Table ct({"cache", "hits", "misses", "entries", "bytes"});
    ct.row()
        .cell("workload arenas")
        .integer(static_cast<long long>(cs.arena_hits))
        .integer(static_cast<long long>(cs.arena_misses))
        .integer(static_cast<long long>(cs.arena_entries))
        .integer(static_cast<long long>(cs.arena_bytes));
    ct.row()
        .cell("evaluation memo")
        .integer(static_cast<long long>(cs.memo_hits))
        .cell("-")
        .integer(static_cast<long long>(cs.memo_entries))
        .cell("-");
    ct.row()
        .cell("warm-up checkpoints")
        .integer(static_cast<long long>(cs.checkpoint_hits))
        .cell("-")
        .integer(static_cast<long long>(cs.checkpoint_entries))
        .integer(static_cast<long long>(cs.checkpoint_bytes));
    ct.print(std::cout, "Evaluator cache statistics (--cache-stats)");
  }

  Table t({"design", "area mm2", "sust GB/s", "power mW", "cost $",
           "waste Mbit", "logic speed"});
  for (const auto& m : metrics) {
    t.row()
        .cell(m.name)
        .num(m.die_area_mm2, 1)
        .num(m.sustained_gbyte_s, 2)
        .num(m.total_power_mw, 0)
        .num(m.unit_cost_usd, 2)
        .num(m.waste_mbit, 0)
        .num(m.logic_speed, 2);
  }
  t.print(std::cout, "Design space: 16-Mbit application @ 2 GB/s demand");

  // Pareto: minimize cost and power, maximize sustained bandwidth.
  std::vector<ParetoPoint> pts;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    pts.push_back(ParetoPoint{i,
                              {metrics[i].unit_cost_usd,
                               metrics[i].total_power_mw,
                               -metrics[i].sustained_gbyte_s}});
  }
  std::cout << "\nPareto-optimal (cost, power, bandwidth):\n";
  for (const std::size_t i : pareto_front(pts)) {
    std::cout << "  * " << metrics[i].name << "\n";
  }

  // §2 advisor verdicts.
  std::cout << "\n";
  Table adv({"application", "eDRAM?", "score", "first reason"});
  for (const auto& v : Advisor{}.advise_all(paper_market_profiles())) {
    adv.row()
        .cell(v.application)
        .cell(v.recommend_edram ? "yes" : "no")
        .num(v.score, 1)
        .cell(v.reasons.empty() ? "-" : v.reasons.front());
  }
  adv.print(std::cout, "Rules-of-thumb advisor (§2 markets)");
  return 0;
}
