// The §3 design space made executable: sweep integration style, process
// choice and interface width for a 16-Mbit application, evaluate each
// point (simulation + models), extract the cost/bandwidth/power Pareto
// front, and print the §2 advisor's verdicts for the paper's markets.
//
// Exploration-as-a-service options:
//   --store <path>   attach a persistent result store (.edrs append log);
//                    re-running against a populated store skips straight
//                    to cache hits (see docs/service.md)
//   --workers <n>    shard the sweep across n forked worker processes
//                    via service::BatchEvaluator (0 = in-process)

#include <iostream>
#include <memory>

#include "common/args.hpp"
#include "common/table.hpp"
#include "core/advisor.hpp"
#include "core/evaluator.hpp"
#include "core/pareto.hpp"
#include "service/batch.hpp"
#include "service/result_store.hpp"

int main(int argc, char** argv) {
  using namespace edsim;
  using namespace edsim::core;

  const Args args(argc, argv, {"cache-stats", "wcet"});
  const std::string store_path = args.get("store");
  const unsigned workers = static_cast<unsigned>(args.get_u64("workers", 0));

  std::vector<SystemConfig> cfgs;
  for (const BaseProcess p :
       {BaseProcess::kDramBased, BaseProcess::kLogicBased,
        BaseProcess::kMerged}) {
    for (const unsigned width : {64u, 128u, 256u, 512u}) {
      SystemConfig s;
      s.name = std::string(to_string(p)) + "/" + std::to_string(width) + "b";
      s.integration = Integration::kEmbedded;
      s.process = p;
      s.required_memory = Capacity::mbit(16);
      s.interface_bits = width;
      s.banks = 4;
      s.page_bytes = 2048;
      cfgs.push_back(s);
    }
  }
  for (const unsigned width : {16u, 32u, 64u}) {
    SystemConfig s;
    s.name = "discrete/" + std::to_string(width) + "b";
    s.integration = Integration::kDiscrete;
    s.required_memory = Capacity::mbit(16);
    s.interface_bits = width;
    cfgs.push_back(s);
  }

  Evaluator ev;
  std::shared_ptr<service::ResultStore> store;
  if (!store_path.empty()) {
    store = std::make_shared<service::ResultStore>(store_path);
    ev.set_result_store(store);
  }

  EvalWorkload w;
  w.demand_gbyte_s = 2.0;
  w.sim_cycles = 50'000;
  // Warm the memory system before measuring; variants sharing a channel
  // shape fan out from one checkpointed warm-up (visible in --cache-stats).
  w.warmup_cycles = 10'000;

  std::vector<Metrics> metrics;
  if (workers > 0) {
    // Sharded batch evaluation: dedup against the store, ship warm-up
    // snapshots to forked workers, stream results back. Bit-identical to
    // ev.sweep at every worker count.
    service::BatchOptions bo;
    bo.workers = workers;
    bo.progress = &std::cout;
    service::BatchEvaluator batch(ev, bo);
    for (const auto& c : cfgs) batch.submit(c, w);
    metrics = batch.run();
    const service::BatchProgress& bp = batch.progress();
    std::cout << "batch: " << bp.queued << " queued, " << bp.deduped
              << " deduped, " << bp.store_hits << " cache/store hits, "
              << bp.done << " done on " << workers << " workers ("
              << bp.workers_lost << " lost)\n";
  } else {
    metrics = ev.sweep(cfgs, w);
  }

  // Re-score the same candidates, as a refinement loop would: every
  // point is now a memo hit, and the workload arenas compiled above are
  // shared rather than regenerated.
  ev.sweep(cfgs, w);
  std::cout << "workload cache: " << ev.workload_cache().entries()
            << " arenas (" << ev.workload_cache().arena_bytes()
            << " bytes), " << ev.workload_cache().hits()
            << " hits\nevaluation memo: " << ev.memo_entries()
            << " entries, " << ev.memo_hits() << " hits on re-sweep\n";

  // --cache-stats: the one-call counter snapshot across all four cache
  // layers (workload arenas, evaluation memo, warm-up checkpoints, and
  // the persistent result store when attached).
  if (args.has("cache-stats")) {
    const Evaluator::CacheStats cs = ev.cache_stats();
    Table ct({"cache", "hits", "misses", "entries", "bytes"});
    ct.row()
        .cell("workload arenas")
        .integer(static_cast<long long>(cs.arena_hits))
        .integer(static_cast<long long>(cs.arena_misses))
        .integer(static_cast<long long>(cs.arena_entries))
        .integer(static_cast<long long>(cs.arena_bytes));
    ct.row()
        .cell("evaluation memo")
        .integer(static_cast<long long>(cs.memo_hits))
        .cell("-")
        .integer(static_cast<long long>(cs.memo_entries))
        .cell("-");
    ct.row()
        .cell("warm-up checkpoints")
        .integer(static_cast<long long>(cs.checkpoint_hits))
        .cell("-")
        .integer(static_cast<long long>(cs.checkpoint_entries))
        .integer(static_cast<long long>(cs.checkpoint_bytes));
    if (cs.store_attached) {
      ct.row()
          .cell("persistent store")
          .integer(static_cast<long long>(cs.store.hits))
          .integer(static_cast<long long>(cs.store.misses))
          .integer(static_cast<long long>(cs.store.entries))
          .integer(static_cast<long long>(cs.store.bytes_written));
    }
    ct.print(std::cout, "Evaluator cache statistics (--cache-stats)");
    if (cs.store_attached) {
      const std::uint64_t probes = cs.store.hits + cs.store.misses;
      std::cout << "persistent store: " << cs.store.bytes_read
                << " bytes replayed, " << cs.store.bytes_written
                << " appended, " << cs.store.recovered_tail_records
                << " torn records recovered";
      if (probes > 0) {
        std::cout << ", " << (100.0 * static_cast<double>(cs.store.hits) /
                              static_cast<double>(probes))
                  << "% hit rate";
      }
      std::cout << "\n";
    }
  }

  Table t({"design", "area mm2", "sust GB/s", "power mW", "cost $",
           "waste Mbit", "logic speed"});
  for (const auto& m : metrics) {
    t.row()
        .cell(m.name)
        .num(m.die_area_mm2, 1)
        .num(m.sustained_gbyte_s, 2)
        .num(m.total_power_mw, 0)
        .num(m.unit_cost_usd, 2)
        .num(m.waste_mbit, 0)
        .num(m.logic_speed, 2);
  }
  t.print(std::cout, "Design space: 16-Mbit application @ 2 GB/s demand");

  // --wcet: the predictable-performance view of the same sweep — each
  // design's simulated worst case next to the analytical WCET bound the
  // evaluator computed for it (core/wcet.hpp). A bound of "unbounded"
  // means the workload is inadmissible on that design, i.e. no
  // worst-case latency can be promised at all.
  if (args.has("wcet")) {
    Table wt({"design", "worst lat ns", "WCET bound ns", "sust GB/s",
              "WCET BW GB/s", "verdict"});
    bool all_ok = true;
    for (const auto& m : metrics) {
      const bool bounded = m.wcet_read_latency_ns > 0.0;
      const bool ok = !bounded || m.worst_read_latency_ns <=
                                      m.wcet_read_latency_ns;
      all_ok = all_ok && ok;
      wt.row()
          .cell(m.name)
          .num(m.worst_read_latency_ns, 1)
          .cell(bounded ? Table::fmt(m.wcet_read_latency_ns, 1)
                        : "unbounded")
          .num(m.sustained_gbyte_s, 2)
          .num(m.wcet_bandwidth_gbyte_s, 2)
          .cell(bounded ? (ok ? "OK" : "VIOLATION") : "-");
    }
    wt.print(std::cout, "Worst-case bounds (--wcet)");
    if (!all_ok) {
      std::cerr << "WCET bound violation in design sweep\n";
      return 1;
    }
  }

  // Pareto: minimize cost and power, maximize sustained bandwidth.
  std::vector<ParetoPoint> pts;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    pts.push_back(ParetoPoint{i,
                              {metrics[i].unit_cost_usd,
                               metrics[i].total_power_mw,
                               -metrics[i].sustained_gbyte_s}});
  }
  std::cout << "\nPareto-optimal (cost, power, bandwidth):\n";
  for (const std::size_t i : pareto_front(pts)) {
    std::cout << "  * " << metrics[i].name << "\n";
  }

  // §2 advisor verdicts.
  std::cout << "\n";
  Table adv({"application", "eDRAM?", "score", "first reason"});
  for (const auto& v : Advisor{}.advise_all(paper_market_profiles())) {
    adv.row()
        .cell(v.application)
        .cell(v.recommend_edram ? "yes" : "no")
        .num(v.score, 1)
        .cell(v.reasons.empty() ? "-" : v.reasons.front());
  }
  adv.print(std::cout, "Rules-of-thumb advisor (§2 markets)");
  return 0;
}
