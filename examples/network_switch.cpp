// §2's high-end eDRAM market: a network-switch packet buffer. 128 Mbit,
// 512-bit interface, many ports writing and reading packet segments
// concurrently. Shows why this market needs the widest interfaces the
// module concept offers, and sizes the per-port FIFOs.

#include <iostream>
#include <memory>

#include "clients/system.hpp"
#include "common/table.hpp"
#include "dram/presets.hpp"

int main() {
  using namespace edsim;

  // A 128-Mbit, 512-bit module (§5's upper envelope).
  dram::DramConfig cfg = dram::presets::edram_module(128, 512, 8, 4096);
  cfg.scheduler = dram::SchedulerKind::kFrFcfs;
  std::cout << "Packet buffer: " << cfg.describe() << "\n\n";

  // 8 ports; each port has an ingress (write) and egress (read) stream of
  // packet segments landing in its own buffer region. Port traffic is
  // paced at 1 Gbit/s-class line rate per direction.
  clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
  const unsigned burst = cfg.bytes_per_access();
  const std::uint64_t region = cfg.capacity().byte_count() / 16;
  const double line_rate_bits = 2.4e9;  // OC-48-class port
  const double bytes_per_cycle = line_rate_bits / 8.0 / cfg.clock.hz();
  const auto period = static_cast<unsigned>(
      static_cast<double>(burst) / bytes_per_cycle);

  unsigned id = 0;
  for (unsigned port = 0; port < 8; ++port) {
    clients::StreamClient::Params in;
    in.base = region * (2 * port);
    in.length = region;
    in.burst_bytes = burst;
    in.type = dram::AccessType::kWrite;
    in.period_cycles = period;
    sys.add_client(std::make_unique<clients::StreamClient>(
        id++, "port" + std::to_string(port) + "-in", in));

    clients::StreamClient::Params out;
    out.base = region * (2 * port + 1);
    out.length = region;
    out.burst_bytes = burst;
    out.type = dram::AccessType::kRead;
    out.period_cycles = period;
    sys.add_client(std::make_unique<clients::StreamClient>(
        id++, "port" + std::to_string(port) + "-out", out));
  }

  sys.run(500'000);  // ~3.4 ms

  Table t({"port client", "GB moved", "mean lat (cyc)", "p99 lat",
           "FIFO bytes"});
  for (std::size_t i = 0; i < sys.client_count(); ++i) {
    const auto& cs = sys.client_stats(i);
    t.row()
        .cell(sys.client(i).name())
        .num(static_cast<double>(cs.bytes) / 1e9, 3)
        .num(cs.latency.mean(), 1)
        .num(cs.p99_latency(), 0)
        .integer(static_cast<long long>(sys.fifo(i).required_depth_bytes()));
  }
  t.print(std::cout, "16 packet streams on the 512-bit module");

  const auto& st = sys.controller().stats();
  std::cout << "aggregate " << to_string(sys.aggregate_bandwidth()) << " ("
            << Table::fmt(sys.bandwidth_efficiency() * 100.0, 1)
            << "% of peak), row hit rate "
            << Table::fmt(st.row_hit_rate() * 100.0, 1) << "%\n"
            << "Aggregate port demand: 8 ports x 2 x 2.4 Gbit/s = 4.8 GB/s "
               "— feasible only with a >=512-bit interface (§2).\n";
  return 0;
}
