// Reliability soak test: the §4.1 MPEG2 decoder's memory system under an
// escalating transient-fault storm, with the runtime reliability layer
// stepped through its presets (off / ecc / ecc+scrub / full graceful
// degradation). Demonstrates:
//   - without protection, faults reach the clients as corrupt data;
//   - ECC + patrol scrub + remap let the same decode complete cleanly;
//   - the fault accounting closes exactly
//     (injected == corrected + uncorrected + remapped);
//   - an identical seed reproduces an identical fault/repair log.
//
// Pass `--intervals PATH` (and optionally `--interval-cycles N`, default
// 10000) to write the full preset's headline run as a per-interval time
// series CSV — bandwidth, page-hit rate and the reliability event bins,
// with every event attributed to its exact cycle.
//
// Pass `--rowhammer` to run the aggressor-storm demo (defended vs
// undefended victim-row corruption counts) and `--retention-bins` to run
// the leaky-cell demo (uniform tREFI sweep vs retention-aware binned
// sweeps), both on the self-managed maintenance engine.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>

#include "clients/system.hpp"
#include "common/args.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/system_config.hpp"
#include "dram/address_map.hpp"
#include "dram/controller.hpp"
#include "dram/presets.hpp"
#include "modulegen/module_compiler.hpp"
#include "mpeg/trace_gen.hpp"
#include "power/energy_model.hpp"
#include "reliability/manager.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/interval.hpp"

namespace {

using namespace edsim;

struct SoakResult {
  dram::ReliabilityCounters counters;
  std::uint64_t client_data_errors = 0;
  std::uint64_t client_corrected = 0;
  std::uint64_t bursts = 0;
  double scrub_coverage = 0.0;
  std::vector<reliability::ReliabilityEvent> log;
};

SoakResult run_soak(core::ReliabilityPreset preset, double fault_rate,
                    std::uint64_t seed, std::uint64_t cycles,
                    telemetry::IntervalReporter* intervals = nullptr) {
  dram::DramConfig cfg = dram::presets::edram_module(16, 64, 4, 2048);
  cfg.ecc_enabled = preset != core::ReliabilityPreset::kOff;
  cfg.watchdog_enabled = true;  // starvation policing rides along

  reliability::ReliabilityConfig rc =
      core::make_reliability_config(preset, seed);
  rc.inject.transient_per_mbit_ms = fault_rate;
  rc.inject.weak_cells = 12;       // plus a retention-weak tail
  rc.spare_rows_per_bank = 8;      // provision for the weak rows
  rc.remap_after_corrections = 32; // remap chronic rows, not noisy ones
  reliability::ReliabilityManager mgr(cfg, rc);

  clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
  sys.controller().attach_reliability(&mgr);
  if (intervals != nullptr) {
    sys.attach_telemetry(intervals);
    mgr.set_event_observer(telemetry::make_interval_observer(*intervals));
  }

  mpeg::DecoderConfig dc;
  dc.format = mpeg::pal();
  const mpeg::DecoderModel model(dc);
  mpeg::add_decoder_clients(sys, model, model.build_memory_map());
  sys.run(cycles);
  mgr.finalize(sys.controller().cycle());
  if (intervals != nullptr) intervals->finish();

  SoakResult r;
  r.counters = mgr.counters();
  for (std::size_t i = 0; i < sys.client_count(); ++i) {
    r.client_data_errors += sys.client_stats(i).data_errors;
    r.client_corrected += sys.client_stats(i).corrected_errors;
    r.bursts += sys.client_stats(i).completed;
  }
  r.scrub_coverage = mgr.scrub_coverage();
  r.log = mgr.event_log();
  return r;
}

// --- self-managed maintenance demos -----------------------------------------

struct HammerResult {
  dram::ReliabilityCounters counters;
  std::uint32_t max_disturbance = 0;
  std::uint64_t maintenance_ops = 0;
  std::uint64_t refreshes = 0;
};

/// Double-sided hammer on one bank: alternate reads of the victim's two
/// neighbor rows, each a fresh ACT. No ECC, no transients — every error
/// in the result is a RowHammer bit flip.
HammerResult run_hammer(bool defended, std::uint64_t cycles) {
  const dram::DramConfig cfg = dram::presets::edram_module(4, 64, 4, 1024);
  reliability::ReliabilityConfig rc;
  rc.inject.seed = 2026;
  rc.inject.hammer_flip_threshold = 128;
  rc.scrub_enabled = false;
  rc.maintenance.enabled = defended;
  rc.maintenance.hammer_threshold = 32;  // 4x margin under the flip point
  rc.maintenance.hammer_table_rows = 4;
  rc.maintenance.base_window_cycles = 500'000;
  reliability::ReliabilityManager mgr(cfg, rc);

  dram::Controller ctl(cfg);
  ctl.attach_reliability(&mgr);
  const dram::AddressMapper map(cfg);
  const std::uint64_t agg[2] = {
      map.encode(dram::Coordinates{1, 9, 0}),
      map.encode(dram::Coordinates{1, 11, 0}),
  };
  unsigned flip = 0;
  std::uint64_t arrival = 5;
  while (ctl.cycle() < cycles) {
    while (arrival == ctl.cycle() && arrival < cycles) {
      dram::Request r;
      r.addr = agg[flip];
      flip ^= 1u;
      r.type = dram::AccessType::kRead;
      ctl.enqueue(r);
      arrival += 24;
    }
    ctl.tick_until(std::min<std::uint64_t>(arrival, cycles));
    ctl.drain_completed();
  }
  mgr.finalize(ctl.cycle());

  HammerResult r;
  r.counters = mgr.counters();
  r.max_disturbance = mgr.max_disturbance();
  r.maintenance_ops = ctl.stats().maintenance_ops;
  r.refreshes = ctl.stats().refreshes;
  return r;
}

void rowhammer_demo() {
  constexpr std::uint64_t kStorm = 200'000;
  Table t({"config", "peak disturbance", "victim flips", "uncorrected",
           "neighbor refreshes", "maint ops", "REF cmds"});
  for (const bool defended : {false, true}) {
    const HammerResult r = run_hammer(defended, kStorm);
    t.row()
        .cell(defended ? "graphene-defended" : "undefended")
        .integer(static_cast<long long>(r.max_disturbance))
        .integer(static_cast<long long>(r.counters.disturb_flips))
        .integer(static_cast<long long>(r.counters.uncorrected))
        .integer(static_cast<long long>(r.counters.neighbor_rows))
        .integer(static_cast<long long>(r.maintenance_ops))
        .integer(static_cast<long long>(r.refreshes));
  }
  t.print(std::cout,
          "RowHammer storm (flip threshold 128, defense threshold 32)");
  std::cout << "The tracker refreshes an aggressor's neighbors before any "
               "victim can cross\nthe flip threshold: defended runs end "
               "with zero corrupt rows.\n\n";
}

/// Leaky-cell sweep comparison: the uniform tREFI walk revisits a row
/// every rows x tREFI cycles, far beyond the weak tail's retention; the
/// binned schedule sweeps exactly as often as each row's weakest cell
/// requires.
void retention_demo() {
  constexpr std::uint64_t kHorizon = 400'000;
  const dram::DramConfig cfg = dram::presets::edram_module(4, 64, 4, 1024);
  Table t({"schedule", "retention faults", "maint rows", "REF cmds",
           "bin windows (cycles)"});
  for (const bool binned : {false, true}) {
    reliability::ReliabilityConfig rc;
    rc.inject.seed = 2026;
    rc.inject.weak_cells = 12;
    rc.inject.weak_retention_min_frac = 0.0005;
    rc.inject.weak_retention_max_frac = 0.0010;
    rc.scrub_enabled = false;
    rc.maintenance.enabled = binned;
    rc.maintenance.bins = 3;
    reliability::ReliabilityManager mgr(cfg, rc);
    dram::Controller ctl(cfg);
    ctl.attach_reliability(&mgr);
    ctl.tick_until(kHorizon);
    mgr.finalize(kHorizon);

    std::string windows = "uniform tREFI";
    if (binned) {
      const auto* engine = mgr.maintenance_engine();
      windows.clear();
      for (unsigned i = 0; i < engine->bins(); ++i) {
        if (i != 0) windows += " / ";
        windows += std::to_string(engine->bin_window(i));
      }
    }
    t.row()
        .cell(binned ? "retention bins" : "uniform tREFI")
        .integer(static_cast<long long>(mgr.counters().injected))
        .integer(static_cast<long long>(mgr.counters().maint_rows))
        .integer(static_cast<long long>(ctl.stats().refreshes))
        .cell(windows);
  }
  t.print(std::cout, "retention-weak tail vs refresh schedule");
  std::cout << "Binned sweeps hold every leaky cell inside its retention "
               "window; the uniform\nsweep provably cannot.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edsim;
  using core::ReliabilityPreset;

  const Args args(argc, argv, {"rowhammer", "retention-bins"});

  if (args.has("rowhammer")) rowhammer_demo();
  if (args.has("retention-bins")) retention_demo();
  if (args.has("rowhammer") || args.has("retention-bins")) return 0;

  constexpr std::uint64_t kSeed = 2026;
  constexpr std::uint64_t kCycles = 400'000;  // ~2.6 ms of decode

  // 1. Degradation curve: escalate the fault storm, compare unprotected
  //    against the full reliability ladder.
  Table t({"faults/Mbit/ms", "preset", "injected", "corrected", "uncorr",
           "remapped", "client-visible errors", "balance"});
  for (const double rate : {2.0, 10.0, 50.0, 200.0}) {
    for (const auto preset : {ReliabilityPreset::kOff,
                              ReliabilityPreset::kFull}) {
      const SoakResult r = run_soak(preset, rate, kSeed, kCycles);
      t.row()
          .num(rate, 0)
          .cell(core::to_string(preset))
          .integer(static_cast<long long>(r.counters.injected))
          .integer(static_cast<long long>(r.counters.corrected))
          .integer(static_cast<long long>(r.counters.uncorrected))
          .integer(static_cast<long long>(r.counters.remapped))
          .integer(static_cast<long long>(r.client_data_errors))
          .cell(r.counters.balanced() ? "exact" : "BROKEN");
    }
  }
  t.print(std::cout, "MPEG2 decode under escalating fault rate");

  // 2. The headline comparison at the harshest rate. The full run also
  //    carries the interval reporter when a time series was requested.
  std::unique_ptr<telemetry::IntervalReporter> intervals;
  if (args.has("intervals")) {
    intervals = std::make_unique<telemetry::IntervalReporter>(
        args.get_u64("interval-cycles", 10'000));
  }
  const SoakResult off = run_soak(ReliabilityPreset::kOff, 200.0, kSeed,
                                  kCycles);
  const SoakResult full = run_soak(ReliabilityPreset::kFull, 200.0, kSeed,
                                   kCycles, intervals.get());
  if (intervals) {
    std::ofstream out(args.get("intervals"));
    require(out.is_open(),
            "cannot open interval output: " + args.get("intervals"));
    const dram::DramConfig icfg = dram::presets::edram_module(16, 64, 4, 2048);
    intervals->write_csv(out, icfg.clock);
    std::cout << "interval series: " << intervals->samples().size() << " x "
              << intervals->interval_cycles() << " cycles -> "
              << args.get("intervals") << "\n\n";
  }
  std::cout << "\nAt 200 faults/Mbit/ms the unprotected decode delivers "
            << off.client_data_errors << " corrupt bursts of " << off.bursts
            << "; with ECC+scrub+remap " << full.client_data_errors
            << " corrupt bursts reach the clients ("
            << full.counters.corrected << " corrected in flight, "
            << full.counters.rows_remapped << " rows remapped, "
            << full.counters.banks_retired << " banks retired, scrub swept "
            << Table::fmt(full.scrub_coverage * 100.0, 1)
            << "% of the array).\n";

  // 3. The accounting identity and seed reproducibility.
  const SoakResult replay = run_soak(ReliabilityPreset::kFull, 200.0, kSeed,
                                     kCycles);
  std::cout << "fault accounting: injected " << full.counters.injected
            << " == corrected " << full.counters.corrected
            << " + uncorrected " << full.counters.uncorrected
            << " + remapped " << full.counters.remapped << " -> "
            << (full.counters.balanced() ? "exact" : "BROKEN") << "\n";
  std::cout << "seed " << kSeed << " replay: " << replay.log.size()
            << " events, "
            << (replay.log == full.log ? "identical to the first run"
                                       : "DIVERGED")
            << "\n\n";

  // 4. What the protection costs: module area and channel power.
  modulegen::ModuleCompiler compiler;
  modulegen::ModuleSpec spec;
  spec.capacity = Capacity::mbit(16);
  spec.interface_bits = 64;
  spec.banks = 4;
  spec.page_bytes = 2048;
  const modulegen::ModuleDesign plain = compiler.compile(spec);
  spec.ecc = true;
  const modulegen::ModuleDesign ecc = compiler.compile(spec);
  std::cout << "module area " << Table::fmt(plain.total_area_mm2, 2)
            << " -> " << Table::fmt(ecc.total_area_mm2, 2) << " mm^2 (+"
            << Table::fmt((ecc.total_area_mm2 / plain.total_area_mm2 - 1.0) *
                              100.0,
                          1)
            << "%) with SEC-DED storage and codec\n";

  dram::DramConfig cfg = dram::presets::edram_module(16, 64, 4, 2048);
  cfg.ecc_enabled = true;
  clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
  mpeg::DecoderConfig dc;
  dc.format = mpeg::pal();
  const mpeg::DecoderModel model(dc);
  mpeg::add_decoder_clients(sys, model, model.build_memory_map());
  sys.run(kCycles);
  const power::DramPowerModel pm(power::core_energy_sdram_025um(),
                                 2.0e-12 /* on-chip J/bit */);
  const power::PowerBreakdown pb =
      pm.evaluate(sys.controller().stats(), cfg);
  std::cout << "channel power with ECC: " << pb.describe() << "\n";
  return 0;
}
