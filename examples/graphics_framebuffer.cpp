// §2's first conquered market: a 3D graphics accelerator's frame store.
// Compares an embedded 16-Mbit module against the discrete alternative
// for the same three clients (scan-out, rendering, texture fetch), on
// bandwidth, latency and interface power — the laptop argument.

#include <iostream>
#include <memory>

#include "clients/system.hpp"
#include "common/table.hpp"
#include "dram/presets.hpp"
#include "phy/interface_model.hpp"
#include "power/energy_model.hpp"

namespace {

struct Result {
  std::string name;
  double sustained_gbs;
  double peak_gbs;
  double scanout_latency;
  double io_power_mw;
};

Result run(const edsim::dram::DramConfig& cfg,
           const edsim::phy::IoElectricals& io, const std::string& name) {
  using namespace edsim;
  clients::MemorySystem sys(cfg, clients::ArbiterKind::kFixedPriority);
  const unsigned burst = cfg.bytes_per_access();

  // Scan-out: XGA 1024x768 @ 75 Hz, 2 B/pixel = 118 MB/s, hard real time
  // (highest priority).
  clients::StreamClient::Params scan;
  scan.length = 1024 * 768 * 2;
  scan.burst_bytes = burst;
  scan.period_cycles = static_cast<unsigned>(
      cfg.clock.hz() / (118e6 / burst));
  sys.add_client(std::make_unique<clients::StreamClient>(0, "scanout", scan));

  // Renderer: unpaced writes into the back buffer.
  clients::StreamClient::Params rend;
  rend.base = 2 * 1024 * 1024;
  rend.length = 1024 * 768 * 2;
  rend.burst_bytes = burst;
  rend.type = dram::AccessType::kWrite;
  sys.add_client(std::make_unique<clients::StreamClient>(1, "render", rend));

  // Texture fetch: random reads.
  clients::RandomClient::Params tex;
  tex.base = 4 * 1024 * 1024;
  tex.length = 1024 * 1024;
  tex.burst_bytes = burst;
  tex.read_fraction = 1.0;
  tex.seed = 3;
  sys.add_client(std::make_unique<clients::RandomClient>(2, "texture", tex));

  sys.run(300'000);

  const phy::InterfaceModel iface(cfg.interface_bits, cfg.clock, io);
  const auto& st = sys.controller().stats();
  Result r;
  r.name = name;
  r.sustained_gbs = sys.aggregate_bandwidth().as_gbyte_per_s();
  r.peak_gbs = cfg.peak_bandwidth().as_gbyte_per_s();
  r.scanout_latency = sys.client_stats(0).latency.mean() *
                      cfg.clock.period_ns();
  r.io_power_mw = iface.dynamic_power_w(st.data_bus_utilization()) * 1e3;
  return r;
}

}  // namespace

int main() {
  using namespace edsim;

  // 64 Mbit: front+back XGA buffer plus textures (§2: graphics needs
  // 8-32+ Mbit of frame storage; we include texture store).
  const Result edram = run(dram::presets::edram_module(64, 128, 4, 2048),
                           phy::on_chip_wire(), "embedded 64Mbit/128-bit");

  dram::DramConfig discrete = dram::presets::sdram_pc100_64mbit();
  discrete.interface_bits = 32;           // 2 x16 chips
  discrete.page_bytes = 1024;             // concatenated pages
  const Result sdram =
      run(discrete, phy::off_chip_board(), "discrete 2x16-bit SDRAM");

  Table t({"system", "sustained GB/s", "peak GB/s", "scanout lat ns",
           "IO power mW"});
  for (const Result& r : {edram, sdram}) {
    t.row()
        .cell(r.name)
        .num(r.sustained_gbs, 2)
        .num(r.peak_gbs, 2)
        .num(r.scanout_latency, 0)
        .num(r.io_power_mw, 1);
  }
  t.print(std::cout, "Graphics frame store: embedded vs discrete (§2)");

  std::cout << "\nInterface energy per bit: on-chip "
            << Table::fmt(phy::InterfaceModel(128, Frequency{143.0},
                                              phy::on_chip_wire())
                                  .energy_per_bit_j() *
                              1e12,
                          1)
            << " pJ vs off-chip "
            << Table::fmt(phy::InterfaceModel(32, Frequency{100.0},
                                              phy::off_chip_board())
                                  .energy_per_bit_j() *
                              1e12,
                          1)
            << " pJ — the laptop battery argument.\n";
  return 0;
}
