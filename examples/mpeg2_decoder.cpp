// The paper's §4.1 case study as an application: an MPEG2 MP@ML decoder's
// memory system on a 16-Mbit embedded DRAM. Prints the footprint budget
// (PAL and NTSC), the output-buffer trade-off, and a cycle-level
// simulation of the four decoder clients.

#include <iostream>
#include <memory>

#include "clients/system.hpp"
#include "common/table.hpp"
#include "dram/presets.hpp"
#include "mpeg/trace_gen.hpp"

int main() {
  using namespace edsim;

  for (const mpeg::FrameFormat& fmt : {mpeg::pal(), mpeg::ntsc()}) {
    mpeg::DecoderConfig dc;
    dc.format = fmt;
    const mpeg::DecoderModel model(dc);

    Table t({"buffer", "size"});
    for (const auto& b : model.footprint())
      t.row().cell(b.name).cell(to_string(b.size));
    t.row().cell("TOTAL").cell(to_string(model.total_footprint()));
    t.print(std::cout, fmt.name + " decoder footprint (standard mode)");
    std::cout << "fits in 16 Mbit: " << (model.fits_16mbit() ? "yes" : "no")
              << "\n\n";
  }

  // The §4.1 trade-off: shrink the output buffer, pay MC bandwidth.
  mpeg::DecoderConfig std_cfg;
  std_cfg.format = mpeg::pal();
  mpeg::DecoderConfig red_cfg = std_cfg;
  red_cfg.reduced_output_buffer = true;
  const mpeg::DecoderModel std_model(std_cfg);
  const mpeg::DecoderModel red_model(red_cfg);
  std::cout << "Output-buffer reduction saves "
            << to_string(std_model.output_buffer_saving())
            << "; MC bandwidth grows "
            << Table::fmt(red_model.bandwidth()[1].read.bits_per_s /
                              std_model.bandwidth()[1].read.bits_per_s,
                          2)
            << "x\n\n";

  // Cycle-level: the four decoder clients on a 16-Mbit, 64-bit module.
  const dram::DramConfig cfg = dram::presets::edram_module(16, 64, 4, 2048);
  clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
  const mpeg::MemoryMap map = std_model.build_memory_map();
  mpeg::add_decoder_clients(sys, std_model, map);
  sys.run(1'000'000);  // ~7 ms of decode time

  Table t({"client", "bursts", "mean lat (cyc)", "stalls"});
  for (std::size_t i = 0; i < sys.client_count(); ++i) {
    const auto& cs = sys.client_stats(i);
    t.row()
        .cell(sys.client(i).name())
        .integer(static_cast<long long>(cs.completed))
        .num(cs.latency.mean(), 1)
        .integer(static_cast<long long>(cs.stall_cycles));
  }
  t.print(std::cout, "Decoder clients on " + cfg.describe());
  std::cout << "aggregate: " << to_string(sys.aggregate_bandwidth())
            << " of " << to_string(cfg.peak_bandwidth()) << " peak ("
            << Table::fmt(sys.bandwidth_efficiency() * 100.0, 1) << "%)\n";
  return 0;
}
