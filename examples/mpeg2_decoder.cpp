// The paper's §4.1 case study as an application: an MPEG2 MP@ML decoder's
// memory system on a 16-Mbit embedded DRAM. Prints the footprint budget
// (PAL and NTSC), the output-buffer trade-off, and a cycle-level
// simulation of the four decoder clients.
//
// Observability (see docs/observability.md):
//   --trace PATH           Chrome trace_event JSON of the run (Perfetto)
//   --trace-csv            write the trace as flat CSV instead of JSON
//   --intervals PATH       per-interval bandwidth/page-hit time series CSV
//   --interval-cycles N    interval length in DRAM cycles (default 10000)
//   --arena                compile the four decoder clients once into
//                          shared immutable arenas and replay them
//                          (bit-identical stats, no per-run generators)
//   --snapshot PATH        after the run, serialize the full simulator
//                          state (versioned, checksummed) to PATH
//   --restore PATH         before the run, restore state from PATH and
//                          continue — a restored run is bit-identical to
//                          one long uninterrupted run. Build the same
//                          roster both times (pass --arena to both runs
//                          or to neither).

#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <vector>

#include "clients/system.hpp"
#include "common/args.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "dram/presets.hpp"
#include "mpeg/trace_gen.hpp"
#include "telemetry/interval.hpp"
#include "telemetry/multi_hooks.hpp"
#include "telemetry/request_tracer.hpp"
#include "telemetry/trace.hpp"

int main(int argc, char** argv) {
  using namespace edsim;

  const Args args(argc, argv, {"trace-csv", "arena"});

  for (const mpeg::FrameFormat& fmt : {mpeg::pal(), mpeg::ntsc()}) {
    mpeg::DecoderConfig dc;
    dc.format = fmt;
    const mpeg::DecoderModel model(dc);

    Table t({"buffer", "size"});
    for (const auto& b : model.footprint())
      t.row().cell(b.name).cell(to_string(b.size));
    t.row().cell("TOTAL").cell(to_string(model.total_footprint()));
    t.print(std::cout, fmt.name + " decoder footprint (standard mode)");
    std::cout << "fits in 16 Mbit: " << (model.fits_16mbit() ? "yes" : "no")
              << "\n\n";
  }

  // The §4.1 trade-off: shrink the output buffer, pay MC bandwidth.
  mpeg::DecoderConfig std_cfg;
  std_cfg.format = mpeg::pal();
  mpeg::DecoderConfig red_cfg = std_cfg;
  red_cfg.reduced_output_buffer = true;
  const mpeg::DecoderModel std_model(std_cfg);
  const mpeg::DecoderModel red_model(red_cfg);
  std::cout << "Output-buffer reduction saves "
            << to_string(std_model.output_buffer_saving())
            << "; MC bandwidth grows "
            << Table::fmt(red_model.bandwidth()[1].read.bits_per_s /
                              std_model.bandwidth()[1].read.bits_per_s,
                          2)
            << "x\n\n";

  // Cycle-level: the four decoder clients on a 16-Mbit, 64-bit module.
  const dram::DramConfig cfg = dram::presets::edram_module(16, 64, 4, 2048);
  clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
  const mpeg::MemoryMap map = std_model.build_memory_map();
  constexpr std::uint64_t kWindow = 1'000'000;  // ~7 ms of decode time
  if (args.has("arena")) {
    mpeg::add_compiled_decoder_clients(sys, std_model, map, kWindow);
    std::cout << "replaying precompiled client arenas\n\n";
  } else {
    mpeg::add_decoder_clients(sys, std_model, map);
  }

  // Optional observability taps, fanned into the single controller probe.
  std::ofstream trace_out;
  std::unique_ptr<telemetry::TraceSink> sink;
  std::unique_ptr<telemetry::RequestTracer> tracer;
  std::ofstream intervals_out;
  std::unique_ptr<telemetry::IntervalReporter> intervals;
  telemetry::FanoutHooks fan;
  if (args.has("trace")) {
    trace_out.open(args.get("trace"));
    require(trace_out.is_open(),
            "cannot open trace output: " + args.get("trace"));
    if (args.has("trace-csv")) {
      sink = std::make_unique<telemetry::CsvTraceSink>(trace_out);
    } else {
      sink = std::make_unique<telemetry::ChromeTraceSink>(trace_out,
                                                          cfg.clock);
    }
    tracer = std::make_unique<telemetry::RequestTracer>(*sink);
    fan.add(tracer.get());
  }
  if (args.has("intervals")) {
    intervals_out.open(args.get("intervals"));
    require(intervals_out.is_open(),
            "cannot open interval output: " + args.get("intervals"));
    intervals = std::make_unique<telemetry::IntervalReporter>(
        args.get_u64("interval-cycles", 10'000));
    fan.add(intervals.get());
  }
  if (!fan.empty()) sys.attach_telemetry(&fan);

  if (args.has("restore")) {
    std::ifstream in(args.get("restore"), std::ios::binary);
    require(in.is_open(), "cannot open snapshot: " + args.get("restore"));
    const std::vector<std::uint8_t> blob(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    sys.restore_snapshot(blob);
    std::cout << "restored " << blob.size() << " snapshot bytes (cycle "
              << sys.controller().cycle() << ") from " << args.get("restore")
              << "\n\n";
  }

  sys.run(kWindow);

  if (args.has("snapshot")) {
    const std::vector<std::uint8_t> blob = sys.save_snapshot();
    std::ofstream out(args.get("snapshot"), std::ios::binary);
    require(out.is_open(), "cannot open snapshot output: " + args.get("snapshot"));
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    require(out.good(), "short write: " + args.get("snapshot"));
    std::cout << "snapshot: " << blob.size() << " bytes (cycle "
              << sys.controller().cycle() << ") -> " << args.get("snapshot")
              << "\n";
  }

  if (intervals) {
    intervals->finish();
    if (sink) intervals->emit_counters(*sink, cfg.clock);
    intervals->write_csv(intervals_out, cfg.clock);
    std::cout << "interval series: " << intervals->samples().size()
              << " x " << intervals->interval_cycles() << " cycles -> "
              << args.get("intervals") << "\n";
  }
  if (sink) {
    sink->finish();
    std::cout << "trace: " << sink->events_emitted() << " events -> "
              << args.get("trace") << "\n";
  }

  Table t({"client", "bursts", "mean lat (cyc)", "stalls"});
  for (std::size_t i = 0; i < sys.client_count(); ++i) {
    const auto& cs = sys.client_stats(i);
    t.row()
        .cell(sys.client(i).name())
        .integer(static_cast<long long>(cs.completed))
        .num(cs.latency.mean(), 1)
        .integer(static_cast<long long>(cs.stall_cycles));
  }
  t.print(std::cout, "Decoder clients on " + cfg.describe());
  std::cout << "aggregate: " << to_string(sys.aggregate_bandwidth())
            << " of " << to_string(cfg.peak_bandwidth()) << " peak ("
            << Table::fmt(sys.bandwidth_efficiency() * 100.0, 1) << "%)\n";
  return 0;
}
