// Scheduler tournament: every scheduling policy over the same GPU/DSP-style
// client mix, simulated results next to the analytical worst-case bounds of
// core/wcet.hpp — the scheduling-policies comparison table, with a
// `simulated <= bound` verdict per row. The TDM policy appears twice: once
// on the default interleaved mapping and once bank-privatized (bank-MSB
// mapping, one client per bank), the arrangement its bound is tight on.
//
//   scheduler_tournament [--cycles N] [--out bench/scheduler_tournament.md]
//
// Exits non-zero if any row violates its bound, so scripts can gate on it.

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "clients/strided_gen.hpp"
#include "clients/system.hpp"
#include "common/args.hpp"
#include "common/table.hpp"
#include "core/wcet.hpp"
#include "dram/config.hpp"

int main(int argc, char** argv) {
  using namespace edsim;
  using clients::SimdStridedClient;
  using clients::StridePattern;

  const Args args(argc, argv);
  const std::uint64_t cycles = args.get_u64("cycles", 200'000);
  const std::string out_path = args.get("out");

  struct Entry {
    dram::SchedulerKind sched;
    dram::AddressMapping mapping;
    bool bank_private;  ///< place each client's surfaces in its own bank
  };
  const std::vector<Entry> entries = {
      {dram::SchedulerKind::kFcfs, dram::AddressMapping::kRowBankCol, false},
      {dram::SchedulerKind::kFcfsPerBank, dram::AddressMapping::kRowBankCol,
       false},
      {dram::SchedulerKind::kFrFcfs, dram::AddressMapping::kRowBankCol, false},
      {dram::SchedulerKind::kReadFirst, dram::AddressMapping::kRowBankCol,
       false},
      {dram::SchedulerKind::kTdm, dram::AddressMapping::kRowBankCol, false},
      {dram::SchedulerKind::kTdm, dram::AddressMapping::kBankRowCol, true},
  };

  Table t({"policy", "mapping", "sim GB/s", "bound GB/s", "sim worst ns",
           "bound ns", "verdict"});
  bool any_violation = false;

  for (const Entry& e : entries) {
    dram::DramConfig cfg;
    cfg.interface_bits = 32;
    cfg.scheduler = e.sched;
    cfg.mapping = e.mapping;
    cfg.tdm_slot_cycles = 64;
    cfg.tdm_clients = 3;
    if (e.bank_private) cfg.queue_depth = 64;

    clients::MemorySystem sys(cfg, clients::ArbiterKind::kRoundRobin);
    std::vector<core::WcetClient> wclients;
    const std::uint64_t bank_bytes =
        static_cast<std::uint64_t>(cfg.rows_per_bank) * cfg.page_bytes;
    // Three Sim-D-style strided sweepers: a row-major scan-out, a
    // column-major transpose (the page-miss worst case), and a tiled
    // kernel walk — each paced, each endless.
    const StridePattern patterns[] = {StridePattern::kRowMajor,
                                      StridePattern::kColumnMajor,
                                      StridePattern::kTiled};
    const unsigned periods[] = {24, 48, 96};
    for (unsigned i = 0; i < 3; ++i) {
      SimdStridedClient::Params p;
      p.base = e.bank_private ? i * bank_bytes : i * (1u << 20);
      p.width_bytes = 4096;
      p.height = 64;
      p.burst_bytes = cfg.bytes_per_access();
      p.tile_width_bytes = 512;
      p.tile_height = 8;
      p.pattern = patterns[i];
      p.period_cycles = periods[i];
      sys.add_client(std::make_unique<SimdStridedClient>(
          i, std::string("simd-") + clients::to_string(patterns[i]), p));
      wclients.push_back(core::WcetClient{i, periods[i], 0});
    }

    sys.run(cycles);
    const auto& stats = sys.controller().stats();
    const double sim_gbs =
        stats.sustained_bandwidth(cfg.clock).as_gbyte_per_s();
    const double sim_worst_ns =
        stats.read_latency.max() * cfg.clock.period_ns();

    const core::WcetAnalysis wa = core::analyze_wcet(cfg, wclients);
    // The bytes verdict uses the exact finite-window bound (same oracle
    // as the differential fuzz); the steady-state rate alone misses the
    // +1 pacing edge a finite window allows each paced client.
    const std::uint64_t bound_bytes =
        core::wcet_max_bytes(cfg, wclients, cycles);
    const double bound_gbs =
        static_cast<double>(bound_bytes) /
        (static_cast<double>(cycles) * cfg.clock.period_ns());
    const bool bw_ok = stats.bytes_transferred <= bound_bytes;
    const bool lat_ok = !wa.latency_bounded || sim_worst_ns <= wa.latency_ns;
    const bool ok = bw_ok && lat_ok;
    any_violation = any_violation || !ok;

    t.row()
        .cell(dram::to_string(e.sched) +
              std::string(e.bank_private ? " (bank-private)" : ""))
        .cell(dram::to_string(e.mapping))
        .num(sim_gbs, 3)
        .num(bound_gbs, 3)
        .num(sim_worst_ns, 1)
        .cell(wa.latency_bounded ? Table::fmt(wa.latency_ns, 1) : "unbounded")
        .cell(ok ? "OK" : "VIOLATION");
  }

  const std::string title =
      "Scheduler tournament: simulated vs analytical worst-case bounds (" +
      std::to_string(cycles) + " cycles, 3 strided clients)";
  t.print(std::cout, title);
  std::cout << "\nA latency bound of \"unbounded\" means the client set is\n"
               "inadmissible under that policy (the interference fixed point\n"
               "diverges) — no worst-case latency claim is made there.\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    out << "# " << title << "\n\n";
    out << "| policy | mapping | sim GB/s | bound GB/s | sim worst ns "
           "| bound ns | verdict |\n";
    out << "|---|---|---|---|---|---|---|\n";
    for (const auto& row : t.rows()) {
      out << "|";
      for (const auto& cell : row) out << " " << cell << " |";
      out << "\n";
    }
    out << "\nEvery row must read OK: the differential fuzz and the `wcet`\n"
           "ctest label assert the same `simulated <= bound` invariant on\n"
           "randomized configurations.\n";
  }

  if (any_violation) {
    std::cerr << "\nWCET bound violation — the analytical model or the "
                 "scheduler is wrong.\n";
    return 1;
  }
  return 0;
}
